//! Compressed sparse row (CSR) format.
//!
//! CSR compresses row indices into a `row_ptr` array and supports efficient
//! row-wise traversal (§2.1). The paper's row-oriented SpMSpV variant and the
//! CPU baseline both stream rows through this format.

use crate::coo::Coo;
use crate::csc::Csc;

/// A sparse matrix in compressed sparse row format.
///
/// Within each row, column indices are sorted ascending.
///
/// # Example
///
/// ```
/// use alpha_pim_sparse::{Coo, Csr};
///
/// # fn main() -> Result<(), alpha_pim_sparse::SparseError> {
/// let coo = Coo::from_entries(2, 2, vec![(0, 0, 1u32), (0, 1, 2), (1, 0, 3)])?;
/// let csr = coo.to_csr();
/// assert_eq!(csr.row(0), (&[0u32, 1][..], &[1u32, 2][..]));
/// assert_eq!(csr.row_nnz(1), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr<V> {
    n_rows: u32,
    n_cols: u32,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<V>,
}

impl<V: Copy> Csr<V> {
    /// Builds a CSR matrix from a COO matrix via counting sort.
    pub fn from_coo(coo: &Coo<V>) -> Self {
        let n_rows = coo.n_rows();
        let mut row_ptr = vec![0usize; n_rows as usize + 1];
        for &r in coo.rows() {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 1..row_ptr.len() {
            row_ptr[i] += row_ptr[i - 1];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; coo.nnz()];
        let mut vals: Vec<V> = Vec::with_capacity(coo.nnz());
        // SAFETY-free scatter: fill with placeholder by cloning first value when
        // available, then overwrite every slot exactly once.
        if coo.nnz() > 0 {
            vals.resize(coo.nnz(), coo.vals()[0]);
        }
        for (r, c, v) in coo.iter() {
            let slot = cursor[r as usize];
            col_idx[slot] = c;
            vals[slot] = v;
            cursor[r as usize] += 1;
        }
        // Sort columns within each row.
        for r in 0..n_rows as usize {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            let mut order: Vec<usize> = (lo..hi).collect();
            order.sort_by_key(|&i| col_idx[i]);
            let sorted_cols: Vec<u32> = order.iter().map(|&i| col_idx[i]).collect();
            let sorted_vals: Vec<V> = order.iter().map(|&i| vals[i]).collect();
            col_idx[lo..hi].copy_from_slice(&sorted_cols);
            vals[lo..hi].copy_from_slice(&sorted_vals);
        }
        Csr { n_rows, n_cols: coo.n_cols(), row_ptr, col_idx, vals }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row-pointer array (length `n_rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array.
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Column indices and values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows`.
    pub fn row(&self, r: u32) -> (&[u32], &[V]) {
        let lo = self.row_ptr[r as usize];
        let hi = self.row_ptr[r as usize + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Number of entries in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows`.
    pub fn row_nnz(&self, r: u32) -> usize {
        self.row_ptr[r as usize + 1] - self.row_ptr[r as usize]
    }

    /// Iterates over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, V)> + '_ {
        (0..self.n_rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Converts back to COO (row-major sorted).
    pub fn to_coo(&self) -> Coo<V> {
        self.iter().collect::<Vec<_>>().into_iter().fold(
            Coo::new(self.n_rows, self.n_cols),
            |mut m, (r, c, v)| {
                m.push(r, c, v).expect("indices validated by construction");
                m
            },
        )
    }

    /// Transpose, expressed as a CSC matrix sharing the same arrays'
    /// interpretation (a CSR of `A` is a CSC of `Aᵀ`).
    pub fn transpose_as_csc(&self) -> Csc<V> {
        Csc::from_raw_parts(
            self.n_cols,
            self.n_rows,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            self.vals.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<u32> {
        Coo::from_entries(3, 4, vec![(2, 0, 1u32), (0, 3, 2), (0, 1, 3), (2, 2, 4)])
            .unwrap()
            .to_csr()
    }

    #[test]
    fn rows_are_sorted_by_column() {
        let m = sample();
        assert_eq!(m.row(0), (&[1u32, 3][..], &[3u32, 2][..]));
        assert_eq!(m.row(1), (&[][..], &[][..]));
        assert_eq!(m.row(2), (&[0u32, 2][..], &[1u32, 4][..]));
    }

    #[test]
    fn row_ptr_is_monotone_and_spans_nnz() {
        let m = sample();
        assert_eq!(*m.row_ptr().last().unwrap(), m.nnz());
        assert!(m.row_ptr().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn roundtrip_through_coo_preserves_entries() {
        let m = sample();
        let back = m.to_coo().to_csr();
        assert_eq!(m, back);
    }

    #[test]
    fn transpose_as_csc_flips_dims() {
        let t = sample().transpose_as_csc();
        assert_eq!((t.n_rows(), t.n_cols()), (4, 3));
        // Column c of the CSC transpose equals row c of the CSR original.
        assert_eq!(t.col(0), (&[1u32, 3][..], &[3u32, 2][..]));
    }

    #[test]
    fn empty_matrix_has_empty_rows() {
        let m = Coo::<u32>::new(2, 2).to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row(1), (&[][..], &[][..]));
    }
}

//! Vertex reordering — a host-side preprocessing lever for PIM load
//! balance.
//!
//! Static equal-size 2D tiles (DCOO / CSC-2D) are cheap to build but
//! inherit whatever row/column skew the vertex numbering carries: on
//! power-law graphs, hub-dense regions produce tiles with orders of
//! magnitude more non-zeros than others, and kernel time is the *maximum*
//! over DPUs. Relabeling vertices spreads hubs across tiles:
//!
//! * [`degree_striped`] — sort vertices by degree, then deal them
//!   round-robin across `stripes` buckets, so each equal-width band gets
//!   a similar degree mix (the balancing choice evaluated in the
//!   repository's ablation study);
//! * [`random_relabel`] — a deterministic pseudo-random shuffle, the
//!   classic skew-destroying baseline.
//!
//! Both return a permutation usable with [`permute`], which relabels rows
//! and columns consistently so the graph is isomorphic to the original.

use crate::coo::Coo;
use crate::error::SparseError;
use crate::Result;

/// Relabels vertices so that degree-sorted vertices are dealt round-robin
/// across `stripes` buckets: `perm[old] = new`.
///
/// # Errors
///
/// Returns [`SparseError::InvalidArgument`] if `stripes` is zero.
pub fn degree_striped(coo: &Coo<u32>, stripes: u32) -> Result<Vec<u32>> {
    if stripes == 0 {
        return Err(SparseError::InvalidArgument("stripes must be positive".into()));
    }
    let n = coo.n_rows().max(coo.n_cols());
    let mut degree = vec![0u32; n as usize];
    for &r in coo.rows() {
        degree[r as usize] += 1;
    }
    for &c in coo.cols() {
        degree[c as usize] += 1;
    }
    let mut order: Vec<u32> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse((degree[v as usize], v)));
    // Deal sorted vertices round-robin into stripes, then concatenate the
    // stripes: stripe s receives sorted ranks s, s+stripes, s+2·stripes…
    let stripes = stripes.min(n.max(1));
    let mut perm = vec![0u32; n as usize];
    let mut next_id = 0u32;
    for s in 0..stripes {
        let mut rank = s;
        while rank < n {
            perm[order[rank as usize] as usize] = next_id;
            next_id += 1;
            rank += stripes;
        }
    }
    Ok(perm)
}

/// A deterministic pseudo-random relabeling: `perm[old] = new`.
pub fn random_relabel(n: u32, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n).collect();
    // Fisher–Yates with a SplitMix64 stream.
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..n as usize).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Applies a vertex relabeling to both dimensions of an adjacency matrix.
///
/// # Errors
///
/// Returns [`SparseError::LengthMismatch`] if the permutation does not
/// cover the matrix dimension.
pub fn permute(coo: &Coo<u32>, perm: &[u32]) -> Result<Coo<u32>> {
    let n = coo.n_rows().max(coo.n_cols());
    if perm.len() != n as usize {
        return Err(SparseError::LengthMismatch {
            what: "permutation vs matrix dimension",
            left: perm.len(),
            right: n as usize,
        });
    }
    let mut out = Coo::new(n, n);
    for (r, c, v) in coo.iter() {
        out.push(perm[r as usize], perm[c as usize], v)
            .expect("permutation stays in range");
    }
    Ok(out)
}

/// Max-over-mean non-zero imbalance of an equal `grid × grid` tiling —
/// the quantity that bounds 2D kernel time.
pub fn tile_imbalance(coo: &Coo<u32>, grid: u32) -> f64 {
    let n = coo.n_rows().max(coo.n_cols()).max(1);
    let tile = n.div_ceil(grid);
    let mut counts = vec![0u64; (grid as usize) * (grid as usize)];
    for (r, c, _) in coo.iter() {
        let (gr, gc) = ((r / tile).min(grid - 1), (c / tile).min(grid - 1));
        counts[(gr * grid + gc) as usize] += 1;
    }
    let max = *counts.iter().max().unwrap_or(&0) as f64;
    let mean = coo.nnz() as f64 / counts.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn skewed() -> Coo<u32> {
        let degs = gen::lognormal_degrees(4000, 10.0, 60.0, 3).unwrap();
        gen::chung_lu(&degs, 3).unwrap()
    }

    #[test]
    fn permutations_are_bijective() {
        let coo = skewed();
        for perm in [
            degree_striped(&coo, 16).unwrap(),
            random_relabel(coo.n_rows(), 7),
        ] {
            let mut seen = vec![false; perm.len()];
            for &p in &perm {
                assert!(!seen[p as usize], "duplicate target {p}");
                seen[p as usize] = true;
            }
        }
    }

    #[test]
    fn permute_preserves_structure_statistics() {
        let coo = skewed();
        let perm = degree_striped(&coo, 32).unwrap();
        let relabeled = permute(&coo, &perm).unwrap();
        assert_eq!(relabeled.nnz(), coo.nnz());
        let mut before = coo.row_counts();
        let mut after = relabeled.row_counts();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "degree multiset is invariant");
    }

    #[test]
    fn degree_striping_reduces_tile_imbalance_on_skewed_graphs() {
        // Concentrate hubs at low ids to create a worst case.
        let coo = skewed();
        let hub_first = permute(&coo, &degree_hub_first(&coo)).unwrap();
        let before = tile_imbalance(&hub_first, 8);
        let striped = permute(&hub_first, &degree_striped(&hub_first, 64).unwrap()).unwrap();
        let after = tile_imbalance(&striped, 8);
        assert!(after < before, "striping should balance tiles: {before:.1} → {after:.1}");
    }

    /// Helper: relabel so the highest-degree vertices get the lowest ids.
    fn degree_hub_first(coo: &Coo<u32>) -> Vec<u32> {
        let n = coo.n_rows().max(coo.n_cols());
        let mut degree = vec![0u32; n as usize];
        for &r in coo.rows() {
            degree[r as usize] += 1;
        }
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(degree[v as usize]));
        let mut perm = vec![0u32; n as usize];
        for (new, &old) in order.iter().enumerate() {
            perm[old as usize] = new as u32;
        }
        perm
    }

    #[test]
    fn random_relabel_is_deterministic() {
        assert_eq!(random_relabel(1000, 42), random_relabel(1000, 42));
        assert_ne!(random_relabel(1000, 42), random_relabel(1000, 43));
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let coo = Coo::from_entries(3, 3, vec![(0, 1, 1u32)]).unwrap();
        assert!(degree_striped(&coo, 0).is_err());
        assert!(permute(&coo, &[0, 1]).is_err());
    }

    #[test]
    fn empty_matrix_has_zero_imbalance() {
        assert_eq!(tile_imbalance(&Coo::<u32>::new(16, 16), 4), 0.0);
    }
}

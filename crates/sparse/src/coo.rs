//! Coordinate-list (COO) sparse matrix format.
//!
//! COO stores each non-zero as an `(row, col, value)` triple (§2.1 of the
//! paper). It is the canonical interchange format in this crate: generators
//! produce COO, partitioners slice COO, and [`Csr`]/[`Csc`] are built from it.

use crate::csc::Csc;
use crate::csr::Csr;
use crate::error::SparseError;
use crate::Result;

/// A sparse matrix in coordinate-list format.
///
/// Entries are stored structure-of-arrays style. Duplicate coordinates are
/// permitted by the representation (graph multi-edges); [`Coo::coalesce`]
/// merges them.
///
/// # Example
///
/// ```
/// use alpha_pim_sparse::Coo;
///
/// # fn main() -> Result<(), alpha_pim_sparse::SparseError> {
/// let m = Coo::from_entries(2, 3, vec![(0, 1, 5u32), (1, 2, 7)])?;
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.to_csr().row(0), (&[1u32][..], &[5u32][..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coo<V> {
    n_rows: u32,
    n_cols: u32,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<V>,
}

impl<V: Copy> Coo<V> {
    /// Creates an empty matrix of the given dimensions.
    pub fn new(n_rows: u32, n_cols: u32) -> Self {
        Coo { n_rows, n_cols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates a matrix from `(row, col, value)` triples.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any triple lies outside
    /// the `n_rows x n_cols` bounds.
    pub fn from_entries(
        n_rows: u32,
        n_cols: u32,
        entries: impl IntoIterator<Item = (u32, u32, V)>,
    ) -> Result<Self> {
        let mut m = Coo::new(n_rows, n_cols);
        for (r, c, v) in entries {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Creates a matrix directly from parallel arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::LengthMismatch`] if the arrays disagree in
    /// length, or [`SparseError::IndexOutOfBounds`] for out-of-range indices.
    pub fn from_parts(
        n_rows: u32,
        n_cols: u32,
        rows: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<V>,
    ) -> Result<Self> {
        if rows.len() != cols.len() {
            return Err(SparseError::LengthMismatch {
                what: "rows vs cols",
                left: rows.len(),
                right: cols.len(),
            });
        }
        if rows.len() != vals.len() {
            return Err(SparseError::LengthMismatch {
                what: "rows vs vals",
                left: rows.len(),
                right: vals.len(),
            });
        }
        for (&r, &c) in rows.iter().zip(&cols) {
            if r >= n_rows || c >= n_cols {
                return Err(SparseError::IndexOutOfBounds { row: r, col: c, n_rows, n_cols });
            }
        }
        Ok(Coo { n_rows, n_cols, rows, cols, vals })
    }

    /// Appends one non-zero entry.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the coordinate is outside
    /// the matrix.
    pub fn push(&mut self, row: u32, col: u32, val: V) -> Result<()> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Number of rows.
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Number of stored entries (including any duplicates).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Row indices of the stored entries.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Column indices of the stored entries.
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// Values of the stored entries.
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Iterates over `(row, col, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, V)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Fraction of non-zero cells: `nnz / (n_rows * n_cols)`.
    ///
    /// This is the "Sparsity" column of Table 2 in the paper.
    pub fn fill_ratio(&self) -> f64 {
        if self.n_rows == 0 || self.n_cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.n_rows as f64 * self.n_cols as f64)
    }

    /// Sorts entries row-major (by row, then column). Stable.
    pub fn sort_row_major(&mut self) {
        let mut order: Vec<u32> = (0..self.nnz() as u32).collect();
        order.sort_by_key(|&i| (self.rows[i as usize], self.cols[i as usize]));
        self.apply_permutation(&order);
    }

    /// Sorts entries column-major (by column, then row). Stable.
    pub fn sort_col_major(&mut self) {
        let mut order: Vec<u32> = (0..self.nnz() as u32).collect();
        order.sort_by_key(|&i| (self.cols[i as usize], self.rows[i as usize]));
        self.apply_permutation(&order);
    }

    fn apply_permutation(&mut self, order: &[u32]) {
        self.rows = order.iter().map(|&i| self.rows[i as usize]).collect();
        self.cols = order.iter().map(|&i| self.cols[i as usize]).collect();
        self.vals = order.iter().map(|&i| self.vals[i as usize]).collect();
    }

    /// Returns the transpose (rows and columns swapped).
    pub fn transpose(&self) -> Coo<V> {
        Coo {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Converts to compressed sparse row format.
    pub fn to_csr(&self) -> Csr<V> {
        Csr::from_coo(self)
    }

    /// Converts to compressed sparse column format.
    pub fn to_csc(&self) -> Csc<V> {
        Csc::from_coo(self)
    }

    /// Per-row entry counts (out-degrees when the matrix is an adjacency
    /// matrix).
    pub fn row_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_rows as usize];
        for &r in &self.rows {
            counts[r as usize] += 1;
        }
        counts
    }

    /// Per-column entry counts (in-degrees for an adjacency matrix).
    pub fn col_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_cols as usize];
        for &c in &self.cols {
            counts[c as usize] += 1;
        }
        counts
    }
}

impl<V: Copy> Coo<V> {
    /// Merges duplicate coordinates, combining values with `combine`.
    ///
    /// The result is sorted row-major.
    pub fn coalesce(&self, combine: impl Fn(V, V) -> V) -> Coo<V> {
        let mut sorted = self.clone();
        sorted.sort_row_major();
        let mut rows = Vec::with_capacity(sorted.nnz());
        let mut cols = Vec::with_capacity(sorted.nnz());
        let mut vals: Vec<V> = Vec::with_capacity(sorted.nnz());
        for (r, c, v) in sorted.iter() {
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    let last = vals.last_mut().expect("vals parallel to rows");
                    *last = combine(*last, v);
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        Coo { n_rows: self.n_rows, n_cols: self.n_cols, rows, cols, vals }
    }

    /// Maps every stored value through `f`, preserving structure.
    pub fn map<U: Copy>(&self, f: impl Fn(V) -> U) -> Coo<U> {
        Coo {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            rows: self.rows.clone(),
            cols: self.cols.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl<V: Copy> FromIterator<(u32, u32, V)> for Coo<V> {
    /// Builds a matrix sized to fit the maximum indices seen.
    fn from_iter<I: IntoIterator<Item = (u32, u32, V)>>(iter: I) -> Self {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut n_rows = 0;
        let mut n_cols = 0;
        for (r, c, v) in iter {
            n_rows = n_rows.max(r + 1);
            n_cols = n_cols.max(c + 1);
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        Coo { n_rows, n_cols, rows, cols, vals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<u32> {
        Coo::from_entries(3, 3, vec![(2, 0, 1u32), (0, 1, 2), (1, 2, 3), (0, 0, 4)]).unwrap()
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut m = Coo::<u32>::new(2, 2);
        assert!(matches!(m.push(2, 0, 1), Err(SparseError::IndexOutOfBounds { .. })));
        assert!(matches!(m.push(0, 2, 1), Err(SparseError::IndexOutOfBounds { .. })));
        assert!(m.push(1, 1, 1).is_ok());
    }

    #[test]
    fn from_parts_validates_lengths() {
        let e = Coo::from_parts(2, 2, vec![0], vec![0, 1], vec![1u32]);
        assert!(matches!(e, Err(SparseError::LengthMismatch { .. })));
    }

    #[test]
    fn sort_row_major_orders_entries() {
        let mut m = sample();
        m.sort_row_major();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples, vec![(0, 0, 4), (0, 1, 2), (1, 2, 3), (2, 0, 1)]);
    }

    #[test]
    fn sort_col_major_orders_entries() {
        let mut m = sample();
        m.sort_col_major();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples, vec![(0, 0, 4), (2, 0, 1), (0, 1, 2), (1, 2, 3)]);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let t = sample().transpose();
        assert_eq!(t.n_rows(), 3);
        let mut t2 = t.transpose();
        t2.sort_row_major();
        let mut orig = sample();
        orig.sort_row_major();
        assert_eq!(t2, orig);
    }

    #[test]
    fn coalesce_merges_duplicates() {
        let m = Coo::from_entries(2, 2, vec![(0, 0, 1u32), (0, 0, 2), (1, 1, 3)]).unwrap();
        let c = m.coalesce(|a, b| a + b);
        assert_eq!(c.nnz(), 2);
        let triples: Vec<_> = c.iter().collect();
        assert_eq!(triples, vec![(0, 0, 3), (1, 1, 3)]);
    }

    #[test]
    fn counts_match_structure() {
        let m = sample();
        assert_eq!(m.row_counts(), vec![2, 1, 1]);
        assert_eq!(m.col_counts(), vec![2, 1, 1]);
    }

    #[test]
    fn fill_ratio_of_empty_matrix_is_zero() {
        assert_eq!(Coo::<u32>::new(0, 0).fill_ratio(), 0.0);
        let m = sample();
        assert!((m.fill_ratio() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_sizes_to_fit() {
        let m: Coo<u32> = vec![(0, 0, 1u32), (4, 2, 2)].into_iter().collect();
        assert_eq!((m.n_rows(), m.n_cols()), (5, 3));
    }

    #[test]
    fn map_preserves_structure() {
        let m = sample().map(|v| v as f32 * 2.0);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.vals()[0], 2.0);
    }
}

//! Dense and compressed (sparse) vectors.
//!
//! Traversal-based graph algorithms iterate matrix–vector products whose
//! input vector density changes every iteration (§3, §4.2 of the paper):
//! BFS frontiers start with one non-zero and grow; SSSP relaxation sets
//! shrink as distances settle. [`DenseVector`] is the SpMV operand;
//! [`SparseVector`] is the compressed SpMSpV operand. Density — the ratio of
//! non-zeros to length, the paper's switching signal — is a first-class
//! query on both.

use crate::error::SparseError;
use crate::Result;

/// A dense vector of length `n` with every element materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVector<V> {
    values: Vec<V>,
}

impl<V: Copy> DenseVector<V> {
    /// Creates a vector of `len` copies of `fill`.
    pub fn filled(len: usize, fill: V) -> Self {
        DenseVector { values: vec![fill; len] }
    }

    /// Wraps an existing value buffer.
    pub fn from_values(values: Vec<V>) -> Self {
        DenseVector { values }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Immutable view of the values.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Mutable view of the values.
    pub fn values_mut(&mut self) -> &mut [V] {
        &mut self.values
    }

    /// Consumes the vector, returning the underlying buffer.
    pub fn into_values(self) -> Vec<V> {
        self.values
    }

    /// Number of elements for which `is_nonzero` returns true.
    pub fn nnz(&self, is_nonzero: impl Fn(&V) -> bool) -> usize {
        self.values.iter().filter(|v| is_nonzero(v)).count()
    }

    /// Fraction of non-zero elements, in `[0, 1]`.
    ///
    /// The paper expresses this as a percentage; multiply by 100 to match.
    pub fn density(&self, is_nonzero: impl Fn(&V) -> bool) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.nnz(is_nonzero) as f64 / self.values.len() as f64
    }

    /// Compresses to a [`SparseVector`], keeping elements where `is_nonzero`.
    pub fn to_sparse(&self, is_nonzero: impl Fn(&V) -> bool) -> SparseVector<V> {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, v) in self.values.iter().enumerate() {
            if is_nonzero(v) {
                indices.push(i as u32);
                values.push(*v);
            }
        }
        SparseVector { len: self.values.len(), indices, values }
    }
}

impl<V> std::ops::Index<usize> for DenseVector<V> {
    type Output = V;
    fn index(&self, i: usize) -> &V {
        &self.values[i]
    }
}

impl<V> std::ops::IndexMut<usize> for DenseVector<V> {
    fn index_mut(&mut self, i: usize) -> &mut V {
        &mut self.values[i]
    }
}

/// A compressed vector storing only non-zero `(index, value)` pairs.
///
/// Indices are kept sorted ascending; this is the format loaded into DPU
/// DRAM banks by the SpMSpV kernels (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector<V> {
    len: usize,
    indices: Vec<u32>,
    values: Vec<V>,
}

impl<V: Copy> SparseVector<V> {
    /// Creates an empty sparse vector of logical length `len`.
    pub fn new(len: usize) -> Self {
        SparseVector { len, indices: Vec::new(), values: Vec::new() }
    }

    /// Creates a sparse vector from parallel index/value arrays.
    ///
    /// Pairs are sorted by index if needed.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::LengthMismatch`] if the arrays disagree, or
    /// [`SparseError::InvalidArgument`] if an index is `>= len` or repeated.
    pub fn from_pairs(len: usize, indices: Vec<u32>, values: Vec<V>) -> Result<Self> {
        if indices.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                what: "indices vs values",
                left: indices.len(),
                right: values.len(),
            });
        }
        let mut pairs: Vec<(u32, V)> = indices.into_iter().zip(values).collect();
        pairs.sort_by_key(|&(i, _)| i);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(SparseError::InvalidArgument(format!(
                    "duplicate index {} in sparse vector",
                    w[0].0
                )));
            }
        }
        if let Some(&(last, _)) = pairs.last() {
            if last as usize >= len {
                return Err(SparseError::InvalidArgument(format!(
                    "index {last} out of range for sparse vector of length {len}"
                )));
            }
        }
        let (indices, values) = pairs.into_iter().unzip();
        Ok(SparseVector { len, indices, values })
    }

    /// A one-hot vector: a single non-zero `value` at `index`.
    ///
    /// This is the BFS/SSSP source frontier and the PPR personalization
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn one_hot(len: usize, index: u32, value: V) -> Self {
        assert!((index as usize) < len, "one_hot index {index} out of range {len}");
        SparseVector { len, indices: vec![index], values: vec![value] }
    }

    /// Logical length of the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of non-zero elements, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.nnz() as f64 / self.len as f64
    }

    /// Sorted indices of the non-zeros.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Values parallel to [`SparseVector::indices`].
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Iterates over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, V)> + '_ {
        self.indices.iter().zip(&self.values).map(|(&i, &v)| (i, v))
    }

    /// Looks up the value at logical index `i`, if stored.
    pub fn get(&self, i: u32) -> Option<V> {
        self.indices.binary_search(&i).ok().map(|slot| self.values[slot])
    }

    /// Expands to a [`DenseVector`], filling unset positions with `zero`.
    pub fn to_dense(&self, zero: V) -> DenseVector<V> {
        let mut dense = DenseVector::filled(self.len, zero);
        for (i, v) in self.iter() {
            dense[i as usize] = v;
        }
        dense
    }

    /// Restricts to indices in `[lo, hi)`, re-basing them to start at zero.
    ///
    /// Used when loading only a partition's input-vector segment into a DPU
    /// (column-wise and 2D partitioning, §4.1.1).
    pub fn slice_range(&self, lo: u32, hi: u32) -> SparseVector<V> {
        let start = self.indices.partition_point(|&i| i < lo);
        let end = self.indices.partition_point(|&i| i < hi);
        SparseVector {
            len: (hi - lo) as usize,
            indices: self.indices[start..end].iter().map(|&i| i - lo).collect(),
            values: self.values[start..end].to_vec(),
        }
    }

    /// Bytes occupied by the compressed representation, assuming 4-byte
    /// indices and `val_bytes`-byte values.
    ///
    /// This is the quantity transferred in the Load phase of SpMSpV.
    pub fn compressed_bytes(&self, val_bytes: usize) -> usize {
        self.nnz() * (4 + val_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_tracks_nnz() {
        let d = DenseVector::from_values(vec![0u32, 3, 0, 5]);
        assert_eq!(d.nnz(|&v| v != 0), 2);
        assert!((d.density(|&v| v != 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn to_sparse_roundtrips() {
        let d = DenseVector::from_values(vec![0u32, 3, 0, 5]);
        let s = d.to_sparse(|&v| v != 0);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.to_dense(0), d);
    }

    #[test]
    fn from_pairs_sorts_and_validates() {
        let s = SparseVector::from_pairs(6, vec![4, 1], vec![40u32, 10]).unwrap();
        assert_eq!(s.indices(), &[1, 4]);
        assert_eq!(s.get(4), Some(40));
        assert_eq!(s.get(0), None);
        assert!(SparseVector::from_pairs(3, vec![5], vec![1u32]).is_err());
        assert!(SparseVector::from_pairs(3, vec![1, 1], vec![1u32, 2]).is_err());
    }

    #[test]
    fn one_hot_has_single_entry() {
        let s = SparseVector::one_hot(10, 7, 1u32);
        assert_eq!(s.nnz(), 1);
        assert!((s.density() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_panics_out_of_range() {
        let _ = SparseVector::one_hot(4, 4, 1u32);
    }

    #[test]
    fn slice_range_rebases_indices() {
        let s = SparseVector::from_pairs(10, vec![1, 4, 6, 9], vec![1u32, 2, 3, 4]).unwrap();
        let sub = s.slice_range(4, 8);
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.indices(), &[0, 2]);
        assert_eq!(sub.values(), &[2, 3]);
    }

    #[test]
    fn compressed_bytes_counts_index_and_value() {
        let s = SparseVector::from_pairs(10, vec![0, 5], vec![1u32, 2]).unwrap();
        assert_eq!(s.compressed_bytes(4), 16);
    }

    #[test]
    fn empty_vectors_have_zero_density() {
        assert_eq!(DenseVector::<u32>::filled(0, 0).density(|&v| v != 0), 0.0);
        assert_eq!(SparseVector::<u32>::new(0).density(), 0.0);
    }
}

//! Compressed sparse column (CSC) format.
//!
//! CSC compresses column indices into a `col_ptr` array and supports
//! efficient column-wise operations (§2.1). The paper finds CSC to be the
//! best format for SpMSpV on UPMEM — only columns matching non-zero input
//! vector entries are touched (§4.1) — so the CSC-R, CSC-C, and CSC-2D
//! kernels all consume this type.

use crate::coo::Coo;

/// A sparse matrix in compressed sparse column format.
///
/// Within each column, row indices are sorted ascending.
///
/// # Example
///
/// ```
/// use alpha_pim_sparse::Coo;
///
/// # fn main() -> Result<(), alpha_pim_sparse::SparseError> {
/// let coo = Coo::from_entries(3, 2, vec![(0, 1, 10u32), (2, 1, 20), (1, 0, 30)])?;
/// let csc = coo.to_csc();
/// assert_eq!(csc.col(1), (&[0u32, 2][..], &[10u32, 20][..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csc<V> {
    n_rows: u32,
    n_cols: u32,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    vals: Vec<V>,
}

impl<V: Copy> Csc<V> {
    /// Builds a CSC matrix from a COO matrix via counting sort.
    pub fn from_coo(coo: &Coo<V>) -> Self {
        let n_cols = coo.n_cols();
        let mut col_ptr = vec![0usize; n_cols as usize + 1];
        for &c in coo.cols() {
            col_ptr[c as usize + 1] += 1;
        }
        for i in 1..col_ptr.len() {
            col_ptr[i] += col_ptr[i - 1];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0u32; coo.nnz()];
        let mut vals: Vec<V> = Vec::with_capacity(coo.nnz());
        if coo.nnz() > 0 {
            vals.resize(coo.nnz(), coo.vals()[0]);
        }
        for (r, c, v) in coo.iter() {
            let slot = cursor[c as usize];
            row_idx[slot] = r;
            vals[slot] = v;
            cursor[c as usize] += 1;
        }
        for c in 0..n_cols as usize {
            let (lo, hi) = (col_ptr[c], col_ptr[c + 1]);
            let mut order: Vec<usize> = (lo..hi).collect();
            order.sort_by_key(|&i| row_idx[i]);
            let sorted_rows: Vec<u32> = order.iter().map(|&i| row_idx[i]).collect();
            let sorted_vals: Vec<V> = order.iter().map(|&i| vals[i]).collect();
            row_idx[lo..hi].copy_from_slice(&sorted_rows);
            vals[lo..hi].copy_from_slice(&sorted_vals);
        }
        Csc { n_rows: coo.n_rows(), n_cols, col_ptr, row_idx, vals }
    }

    /// Builds a CSC matrix directly from its constituent arrays.
    ///
    /// Intended for format-level conversions (e.g. interpreting a CSR of `A`
    /// as a CSC of `Aᵀ`); callers must guarantee that `col_ptr` is monotone,
    /// spans `row_idx`, and that row indices are in bounds and sorted within
    /// each column.
    pub(crate) fn from_raw_parts(
        n_rows: u32,
        n_cols: u32,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        vals: Vec<V>,
    ) -> Self {
        debug_assert_eq!(col_ptr.len(), n_cols as usize + 1);
        debug_assert_eq!(*col_ptr.last().unwrap_or(&0), row_idx.len());
        Csc { n_rows, n_cols, col_ptr, row_idx, vals }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The column-pointer array (length `n_cols + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row-index array.
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// The value array.
    pub fn vals(&self) -> &[V] {
        &self.vals
    }

    /// Row indices and values of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= n_cols`.
    pub fn col(&self, c: u32) -> (&[u32], &[V]) {
        let lo = self.col_ptr[c as usize];
        let hi = self.col_ptr[c as usize + 1];
        (&self.row_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Number of entries in column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= n_cols`.
    pub fn col_nnz(&self, c: u32) -> usize {
        self.col_ptr[c as usize + 1] - self.col_ptr[c as usize]
    }

    /// Iterates over `(row, col, value)` triples in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, V)> + '_ {
        (0..self.n_cols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter().zip(vals).map(move |(&r, &v)| (r, c, v))
        })
    }

    /// Converts back to COO (column-major sorted).
    pub fn to_coo(&self) -> Coo<V> {
        self.iter().collect::<Vec<_>>().into_iter().fold(
            Coo::new(self.n_rows, self.n_cols),
            |mut m, (r, c, v)| {
                m.push(r, c, v).expect("indices validated by construction");
                m
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csc<u32> {
        Coo::from_entries(4, 3, vec![(0, 2, 1u32), (3, 0, 2), (1, 0, 3), (2, 2, 4)])
            .unwrap()
            .to_csc()
    }

    #[test]
    fn cols_are_sorted_by_row() {
        let m = sample();
        assert_eq!(m.col(0), (&[1u32, 3][..], &[3u32, 2][..]));
        assert_eq!(m.col(1), (&[][..], &[][..]));
        assert_eq!(m.col(2), (&[0u32, 2][..], &[1u32, 4][..]));
    }

    #[test]
    fn col_ptr_is_monotone_and_spans_nnz() {
        let m = sample();
        assert_eq!(*m.col_ptr().last().unwrap(), m.nnz());
        assert!(m.col_ptr().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn roundtrip_through_coo_preserves_entries() {
        let m = sample();
        assert_eq!(m, m.to_coo().to_csc());
    }

    #[test]
    fn col_nnz_counts_entries() {
        let m = sample();
        assert_eq!((m.col_nnz(0), m.col_nnz(1), m.col_nnz(2)), (2, 0, 2));
    }

    #[test]
    fn csc_and_csr_agree_through_transpose() {
        let coo = Coo::from_entries(3, 3, vec![(0, 1, 7u32), (2, 2, 8), (1, 0, 9)]).unwrap();
        let csc = coo.to_csc();
        let csr_t = coo.transpose().to_csr();
        for i in 0..3u32 {
            assert_eq!(csc.col(i), csr_t.row(i));
        }
    }
}

//! Matrix partitioning strategies across DPUs (Fig. 3 of the paper).
//!
//! Three strategies are implemented, matching §4.1.1:
//!
//! * **Row-wise** — `D` contiguous row bands; every DPU receives the full
//!   input vector, no merge step is needed.
//! * **Column-wise** — `D` contiguous column bands; every DPU receives only
//!   its input-vector segment but emits a full-length partial output that
//!   the host must merge.
//! * **2D grid** — a `pr × pc` grid of tiles; input and output vectors are
//!   both partitioned, and tiles sharing a row band produce partial results
//!   merged on the host.
//!
//! Bands can be split by **equal index ranges** (the paper's "static,
//! equal-sized" tiles used by DCOO/CSC-2D) or **nnz-balanced** (SparseP's
//! `COO.nnz`), see [`Balance`].

use std::ops::Range;

use crate::coo::Coo;
use crate::error::SparseError;
use crate::Result;

/// How to split an index space into contiguous bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balance {
    /// Equal-width index ranges (static tiling).
    EqualRange,
    /// Ranges chosen so each band holds roughly the same number of
    /// non-zeros (SparseP's `.nnz` load balancing).
    Nnz,
}

/// One row band of a row-wise partitioning.
///
/// The contained matrix uses **local row indices** (`0..row_range.len()`)
/// and **global column indices** (the full input vector is present on the
/// DPU).
#[derive(Debug, Clone)]
pub struct RowPartition<V> {
    /// Index of this partition among its siblings.
    pub part: u32,
    /// Global rows covered by this band.
    pub row_range: Range<u32>,
    /// The band's entries, rows re-based to the band start.
    pub matrix: Coo<V>,
}

/// One column band of a column-wise partitioning.
///
/// The contained matrix uses **global row indices** (each DPU emits a
/// full-length partial output vector) and **local column indices**.
#[derive(Debug, Clone)]
pub struct ColPartition<V> {
    /// Index of this partition among its siblings.
    pub part: u32,
    /// Global columns covered by this band.
    pub col_range: Range<u32>,
    /// The band's entries, columns re-based to the band start.
    pub matrix: Coo<V>,
}

/// One tile of a 2D grid partitioning, with both indices localized.
#[derive(Debug, Clone)]
pub struct Tile<V> {
    /// Flat tile index (`grid_row * grid_cols + grid_col`).
    pub part: u32,
    /// Row position in the tile grid.
    pub grid_row: u32,
    /// Column position in the tile grid.
    pub grid_col: u32,
    /// Global rows covered.
    pub row_range: Range<u32>,
    /// Global columns covered.
    pub col_range: Range<u32>,
    /// The tile's entries with both coordinates re-based.
    pub matrix: Coo<V>,
}

/// A complete 2D tiling: `grid_rows × grid_cols` tiles in row-major order.
#[derive(Debug, Clone)]
pub struct GridPartition<V> {
    /// Number of tile rows.
    pub grid_rows: u32,
    /// Number of tile columns.
    pub grid_cols: u32,
    /// Tiles in row-major order; length `grid_rows * grid_cols`.
    pub tiles: Vec<Tile<V>>,
}

impl<V> GridPartition<V> {
    /// Number of tiles that contribute partial results to each output row
    /// band (the host-merge fan-in).
    pub fn merge_fan_in(&self) -> u32 {
        self.grid_cols
    }
}

/// Splits `0..n` into `parts` equal-width contiguous ranges.
///
/// Earlier ranges are one longer when `n` is not divisible by `parts`.
pub fn equal_ranges(n: u32, parts: u32) -> Vec<Range<u32>> {
    assert!(parts > 0, "parts must be positive");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut start = 0;
    for p in 0..parts {
        let len = base + u32::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits `0..counts.len()` into `parts` contiguous ranges whose summed
/// counts are as even as possible.
///
/// Each part's band ends at the prefix whose summed count lands closest to
/// the part's ideal share — `remaining_total / remaining_parts`, re-planned
/// after every boundary so one heavy index cannot starve later parts into
/// forced single-index bands (ties keep the boundary early). Every part
/// keeps at least one index while indices remain, so the ranges always
/// tile `0..n` exactly, never overlap, and only trailing ranges can be
/// empty, mirroring [`equal_ranges`] when `parts > n`. All-zero counts
/// fall back to equal-width ranges.
pub fn nnz_balanced_ranges(counts: &[u32], parts: u32) -> Vec<Range<u32>> {
    assert!(parts > 0, "parts must be positive");
    let n = counts.len() as u32;
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return equal_ranges(n, parts);
    }
    let mut out = Vec::with_capacity(parts as usize);
    let mut start = 0u32;
    let mut consumed = 0u64;
    for p in 0..parts - 1 {
        // Take at least one index and reserve one for each later part
        // while indices remain, so empty ranges only ever trail.
        let min_end = if start < n { start + 1 } else { n };
        let max_end = n.saturating_sub(parts - 1 - p).clamp(min_end, n);
        let remaining = u128::from(total - consumed);
        let den = u128::from(parts - p);
        let mut end = start;
        let mut acc = 0u64;
        while end < min_end {
            acc += counts[end as usize] as u64;
            end += 1;
        }
        // While the band undershoots its ideal share `remaining / den`,
        // keep extending: zero counts ride along for free, and the index
        // that crosses the ideal is included only when it lands closer
        // than stopping short (cross-multiplied; ties keep the boundary
        // early).
        while end < max_end && u128::from(acc) * den < remaining {
            let c = u64::from(counts[end as usize]);
            let next = acc + c;
            let d_now = (u128::from(acc) * den).abs_diff(remaining);
            let d_next = (u128::from(next) * den).abs_diff(remaining);
            if c > 0 && d_next >= d_now {
                break;
            }
            acc = next;
            end += 1;
        }
        consumed += acc;
        out.push(start..end);
        start = end;
    }
    out.push(start..n);
    out
}

/// A stable 64-bit fingerprint of a matrix — dimensions, nnz, and every
/// entry's coordinates and value bit pattern folded through a
/// SplitMix64-style mixer — for keying partition caches: two matrices with
/// the same fingerprint partition identically under any strategy here.
/// `value_bits` projects an element to its canonical bit pattern (e.g.
/// identity for integer weights, `f64::to_bits` for scores).
pub fn structural_fingerprint<V: Copy, F: Fn(V) -> u64>(coo: &Coo<V>, value_bits: F) -> u64 {
    fn mix(h: u64, w: u64) -> u64 {
        let mut z = h.wrapping_add(w).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let mut h = mix(0x5EED_0F1A_6E12_0B57, u64::from(coo.n_rows()) << 32 | u64::from(coo.n_cols()));
    h = mix(h, coo.nnz() as u64);
    for (r, c, v) in coo.iter() {
        h = mix(h, u64::from(r) << 32 | u64::from(c));
        h = mix(h, value_bits(v));
    }
    h
}

fn ranges_for<V: Copy>(coo: &Coo<V>, parts: u32, balance: Balance, by_rows: bool) -> Vec<Range<u32>> {
    let n = if by_rows { coo.n_rows() } else { coo.n_cols() };
    match balance {
        Balance::EqualRange => equal_ranges(n, parts),
        Balance::Nnz => {
            let counts = if by_rows { coo.row_counts() } else { coo.col_counts() };
            nnz_balanced_ranges(&counts, parts)
        }
    }
}

/// Partitions a matrix into `parts` row bands.
///
/// # Errors
///
/// Returns [`SparseError::InvalidArgument`] if `parts` is zero.
pub fn partition_rows<V: Copy>(
    coo: &Coo<V>,
    parts: u32,
    balance: Balance,
) -> Result<Vec<RowPartition<V>>> {
    if parts == 0 {
        return Err(SparseError::InvalidArgument("cannot partition into 0 parts".into()));
    }
    let ranges = ranges_for(coo, parts, balance, true);
    // Bucket entries by partition in one pass.
    let mut part_of_row = vec![0u32; coo.n_rows() as usize];
    for (p, range) in ranges.iter().enumerate() {
        for r in range.clone() {
            part_of_row[r as usize] = p as u32;
        }
    }
    let mut parts_out: Vec<RowPartition<V>> = ranges
        .iter()
        .enumerate()
        .map(|(p, range)| RowPartition {
            part: p as u32,
            row_range: range.clone(),
            matrix: Coo::new(range.end - range.start, coo.n_cols()),
        })
        .collect();
    for (r, c, v) in coo.iter() {
        let p = part_of_row[r as usize] as usize;
        let local_r = r - parts_out[p].row_range.start;
        parts_out[p].matrix.push(local_r, c, v).expect("local row within band");
    }
    Ok(parts_out)
}

/// Partitions a matrix into `parts` column bands.
///
/// # Errors
///
/// Returns [`SparseError::InvalidArgument`] if `parts` is zero.
pub fn partition_cols<V: Copy>(
    coo: &Coo<V>,
    parts: u32,
    balance: Balance,
) -> Result<Vec<ColPartition<V>>> {
    if parts == 0 {
        return Err(SparseError::InvalidArgument("cannot partition into 0 parts".into()));
    }
    let ranges = ranges_for(coo, parts, balance, false);
    let mut part_of_col = vec![0u32; coo.n_cols() as usize];
    for (p, range) in ranges.iter().enumerate() {
        for c in range.clone() {
            part_of_col[c as usize] = p as u32;
        }
    }
    let mut parts_out: Vec<ColPartition<V>> = ranges
        .iter()
        .enumerate()
        .map(|(p, range)| ColPartition {
            part: p as u32,
            col_range: range.clone(),
            matrix: Coo::new(coo.n_rows(), range.end - range.start),
        })
        .collect();
    for (r, c, v) in coo.iter() {
        let p = part_of_col[c as usize] as usize;
        let local_c = c - parts_out[p].col_range.start;
        parts_out[p].matrix.push(r, local_c, v).expect("local col within band");
    }
    Ok(parts_out)
}

/// Chooses a near-square `(grid_rows, grid_cols)` factorization of
/// `num_parts`, preferring more columns than rows when they differ.
pub fn near_square_grid(num_parts: u32) -> (u32, u32) {
    assert!(num_parts > 0, "num_parts must be positive");
    let mut best = (1, num_parts);
    let mut r = 1;
    while r * r <= num_parts {
        if num_parts.is_multiple_of(r) {
            best = (r, num_parts / r);
        }
        r += 1;
    }
    best
}

/// Partitions a matrix into a `grid_rows × grid_cols` tile grid with
/// static equal-size tiles (the paper's DCOO / CSC-2D layout).
///
/// # Errors
///
/// Returns [`SparseError::InvalidArgument`] if either grid dimension is
/// zero.
pub fn partition_grid<V: Copy>(
    coo: &Coo<V>,
    grid_rows: u32,
    grid_cols: u32,
) -> Result<GridPartition<V>> {
    if grid_rows == 0 || grid_cols == 0 {
        return Err(SparseError::InvalidArgument("grid dimensions must be positive".into()));
    }
    let row_ranges = equal_ranges(coo.n_rows(), grid_rows);
    let col_ranges = equal_ranges(coo.n_cols(), grid_cols);
    let mut row_of = vec![0u32; coo.n_rows() as usize];
    for (i, range) in row_ranges.iter().enumerate() {
        for r in range.clone() {
            row_of[r as usize] = i as u32;
        }
    }
    let mut col_of = vec![0u32; coo.n_cols() as usize];
    for (i, range) in col_ranges.iter().enumerate() {
        for c in range.clone() {
            col_of[c as usize] = i as u32;
        }
    }
    let mut tiles: Vec<Tile<V>> = Vec::with_capacity((grid_rows * grid_cols) as usize);
    for gr in 0..grid_rows {
        for gc in 0..grid_cols {
            let rr = row_ranges[gr as usize].clone();
            let cr = col_ranges[gc as usize].clone();
            tiles.push(Tile {
                part: gr * grid_cols + gc,
                grid_row: gr,
                grid_col: gc,
                row_range: rr.clone(),
                col_range: cr.clone(),
                matrix: Coo::new(rr.end - rr.start, cr.end - cr.start),
            });
        }
    }
    for (r, c, v) in coo.iter() {
        let gr = row_of[r as usize];
        let gc = col_of[c as usize];
        let tile = &mut tiles[(gr * grid_cols + gc) as usize];
        tile.matrix
            .push(r - tile.row_range.start, c - tile.col_range.start, v)
            .expect("local coordinates within tile");
    }
    Ok(GridPartition { grid_rows, grid_cols, tiles })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<u32> {
        // 6x6 with a dense-ish top-left and a heavy last row.
        Coo::from_entries(
            6,
            6,
            vec![
                (0, 0, 1u32),
                (0, 1, 1),
                (1, 1, 1),
                (2, 3, 1),
                (5, 0, 1),
                (5, 2, 1),
                (5, 4, 1),
                (5, 5, 1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn equal_ranges_cover_everything() {
        let rs = equal_ranges(10, 3);
        assert_eq!(rs, vec![0..4, 4..7, 7..10]);
        let rs = equal_ranges(2, 4);
        assert_eq!(rs.iter().map(|r| r.end - r.start).sum::<u32>(), 2);
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn nnz_balanced_ranges_balance_counts() {
        let counts = vec![10, 1, 1, 1, 1, 10];
        let rs = nnz_balanced_ranges(&counts, 2);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].start, 0);
        assert_eq!(rs[1].end, 6);
        let sum0: u32 = rs[0].clone().map(|i| counts[i as usize]).sum();
        let sum1: u32 = rs[1].clone().map(|i| counts[i as usize]).sum();
        assert!(sum0.abs_diff(sum1) <= 10, "sums {sum0} vs {sum1}");
    }

    #[test]
    fn nnz_balanced_ranges_are_contiguous_and_total() {
        let counts = vec![3, 0, 0, 7, 2, 2, 9, 0];
        let rs = nnz_balanced_ranges(&counts, 3);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].start, 0);
        assert_eq!(rs.last().unwrap().end, 8);
        for w in rs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn row_partitions_localize_rows_and_preserve_nnz() {
        let coo = sample();
        let parts = partition_rows(&coo, 3, Balance::EqualRange).unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.matrix.nnz()).sum();
        assert_eq!(total, coo.nnz());
        for p in &parts {
            assert_eq!(p.matrix.n_rows(), p.row_range.end - p.row_range.start);
            assert_eq!(p.matrix.n_cols(), coo.n_cols());
        }
    }

    #[test]
    fn nnz_balanced_rows_tame_the_heavy_row() {
        let coo = sample();
        let eq = partition_rows(&coo, 3, Balance::EqualRange).unwrap();
        let bal = partition_rows(&coo, 3, Balance::Nnz).unwrap();
        let max_eq = eq.iter().map(|p| p.matrix.nnz()).max().unwrap();
        let max_bal = bal.iter().map(|p| p.matrix.nnz()).max().unwrap();
        assert!(max_bal <= max_eq, "balanced {max_bal} vs equal {max_eq}");
    }

    #[test]
    fn col_partitions_localize_cols_and_preserve_nnz() {
        let coo = sample();
        let parts = partition_cols(&coo, 2, Balance::Nnz).unwrap();
        let total: usize = parts.iter().map(|p| p.matrix.nnz()).sum();
        assert_eq!(total, coo.nnz());
        for p in &parts {
            assert_eq!(p.matrix.n_rows(), coo.n_rows());
            for &c in p.matrix.cols() {
                assert!(c < p.col_range.end - p.col_range.start);
            }
        }
    }

    #[test]
    fn grid_partition_reassembles_to_original() {
        let coo = sample();
        let grid = partition_grid(&coo, 2, 3).unwrap();
        assert_eq!(grid.tiles.len(), 6);
        assert_eq!(grid.merge_fan_in(), 3);
        let mut reassembled = Coo::new(6, 6);
        for t in &grid.tiles {
            for (r, c, v) in t.matrix.iter() {
                reassembled
                    .push(r + t.row_range.start, c + t.col_range.start, v)
                    .unwrap();
            }
        }
        let mut a = coo.clone();
        a.sort_row_major();
        reassembled.sort_row_major();
        assert_eq!(a, reassembled);
    }

    #[test]
    fn near_square_grid_factorizes() {
        assert_eq!(near_square_grid(2048), (32, 64));
        assert_eq!(near_square_grid(1), (1, 1));
        assert_eq!(near_square_grid(12), (3, 4));
        assert_eq!(near_square_grid(7), (1, 7));
    }

    #[test]
    fn zero_parts_is_an_error() {
        let coo = sample();
        assert!(partition_rows(&coo, 0, Balance::Nnz).is_err());
        assert!(partition_cols(&coo, 0, Balance::Nnz).is_err());
        assert!(partition_grid(&coo, 0, 2).is_err());
    }

    #[test]
    fn more_parts_than_rows_yields_empty_bands() {
        let coo = Coo::from_entries(2, 2, vec![(0, 0, 1u32), (1, 1, 1)]).unwrap();
        for balance in [Balance::EqualRange, Balance::Nnz] {
            let parts = partition_rows(&coo, 5, balance).unwrap();
            assert_eq!(parts.len(), 5);
            let total: usize = parts.iter().map(|p| p.matrix.nnz()).sum();
            assert_eq!(total, 2);
            // Only trailing bands may be empty, and they sit at the end of
            // the index space.
            for p in &parts[2..] {
                assert_eq!(p.row_range, 2..2, "{balance:?}");
            }
        }
    }

    #[test]
    fn all_zero_counts_fall_back_to_equal_ranges() {
        assert_eq!(nnz_balanced_ranges(&[0; 10], 3), equal_ranges(10, 3));
        assert_eq!(nnz_balanced_ranges(&[], 4), equal_ranges(0, 4));
    }

    #[test]
    fn skewed_counts_do_not_starve_later_parts() {
        // One index holds nearly all the mass; the remaining parts must
        // still receive their index share instead of forced 1-wide bands.
        let mut counts = vec![1u32; 12];
        counts[0] = 1000;
        let rs = nnz_balanced_ranges(&counts, 4);
        assert_eq!(rs[0], 0..1, "the heavy index is its own band");
        let widths: Vec<u32> = rs[1..].iter().map(|r| r.end - r.start).collect();
        assert!(widths.iter().all(|&w| w >= 3), "widths {widths:?}");
    }

    #[test]
    fn structural_fingerprint_discriminates() {
        let a = sample();
        let fp = |c: &Coo<u32>| structural_fingerprint(c, u64::from);
        assert_eq!(fp(&a), fp(&a.clone()));
        let mut b = sample();
        b.push(3, 3, 1).unwrap();
        assert_ne!(fp(&a), fp(&b), "extra entry must change the fingerprint");
        let c = Coo::from_entries(
            6,
            6,
            vec![
                (0, 0, 2u32),
                (0, 1, 1),
                (1, 1, 1),
                (2, 3, 1),
                (5, 0, 1),
                (5, 2, 1),
                (5, 4, 1),
                (5, 5, 1),
            ],
        )
        .unwrap();
        assert_ne!(fp(&a), fp(&c), "changed value must change the fingerprint");
        let d: Coo<u32> = Coo::new(7, 6);
        let e: Coo<u32> = Coo::new(6, 7);
        assert_ne!(
            structural_fingerprint(&d, u64::from),
            structural_fingerprint(&e, u64::from),
            "dimensions must be mixed in"
        );
    }
}

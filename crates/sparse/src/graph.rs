//! Graph layer: an adjacency matrix plus the structural statistics the
//! paper's adaptive kernel selection keys on.
//!
//! Table 2 of the paper characterizes every dataset by node count, edge
//! count, average degree, degree standard deviation, and sparsity; §4.2.1
//! feeds average degree and degree std into a decision tree that classifies
//! graphs as *regular* or *scale-free*. [`GraphStats`] computes exactly
//! those features.

use crate::coo::Coo;
use crate::csc::Csc;
use crate::csr::Csr;

/// Structural statistics of a graph (the Table 2 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub nodes: u32,
    /// Number of directed edges (stored non-zeros).
    pub edges: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Population standard deviation of out-degrees.
    pub degree_std: f64,
    /// `edges / nodes²` — the "Sparsity" column of Table 2.
    pub sparsity: f64,
    /// Maximum out-degree.
    pub max_degree: u32,
}

impl GraphStats {
    /// Coefficient of variation of the degree distribution
    /// (`degree_std / avg_degree`); >1 indicates a skewed, scale-free-like
    /// distribution.
    pub fn degree_cv(&self) -> f64 {
        if self.avg_degree == 0.0 {
            0.0
        } else {
            self.degree_std / self.avg_degree
        }
    }
}

/// A directed graph represented by its square adjacency matrix.
///
/// Edge weights are `u32`; unweighted graphs store weight 1. Linear-algebraic
/// traversals operate on `Aᵀ` (e.g. BFS as `v = Aᵀ v`, §2.1), so the
/// transposed compressed forms are exposed alongside the direct ones and
/// cached lazily by the framework layer.
///
/// # Example
///
/// ```
/// use alpha_pim_sparse::{Coo, Graph};
///
/// # fn main() -> Result<(), alpha_pim_sparse::SparseError> {
/// let coo = Coo::from_entries(3, 3, vec![(0, 1, 1u32), (1, 2, 1), (0, 2, 1)])?;
/// let g = Graph::from_coo(coo);
/// assert_eq!(g.nodes(), 3);
/// assert_eq!(g.edges(), 3);
/// assert!(g.stats().avg_degree > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    adjacency: Coo<u32>,
    stats: GraphStats,
}

impl Graph {
    /// Wraps an adjacency matrix. Non-square matrices are padded to square
    /// by taking `max(n_rows, n_cols)` as the node count.
    pub fn from_coo(adjacency: Coo<u32>) -> Self {
        let n = adjacency.n_rows().max(adjacency.n_cols());
        let adjacency = if adjacency.n_rows() == n && adjacency.n_cols() == n {
            adjacency
        } else {
            let mut padded = Coo::new(n, n);
            for (r, c, v) in adjacency.iter() {
                padded.push(r, c, v).expect("entries within padded bounds");
            }
            padded
        };
        let stats = compute_stats(&adjacency);
        Graph { adjacency, stats }
    }

    /// Number of vertices.
    pub fn nodes(&self) -> u32 {
        self.stats.nodes
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.stats.edges
    }

    /// The cached structural statistics.
    pub fn stats(&self) -> GraphStats {
        self.stats
    }

    /// The adjacency matrix in COO form.
    pub fn adjacency(&self) -> &Coo<u32> {
        &self.adjacency
    }

    /// The adjacency matrix in CSR form (computed on demand).
    pub fn to_csr(&self) -> Csr<u32> {
        self.adjacency.to_csr()
    }

    /// The adjacency matrix in CSC form (computed on demand).
    pub fn to_csc(&self) -> Csc<u32> {
        self.adjacency.to_csc()
    }

    /// The transposed adjacency matrix in COO form.
    ///
    /// Linear-algebraic traversals multiply by `Aᵀ`, so kernels usually
    /// consume this.
    pub fn transposed(&self) -> Coo<u32> {
        self.adjacency.transpose()
    }

    /// Out-degrees of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        self.adjacency.row_counts()
    }

    /// In-degrees of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        self.adjacency.col_counts()
    }

    /// Replaces every edge weight with a deterministic pseudo-random weight
    /// in `[1, max_weight]`, keyed by the edge endpoints.
    ///
    /// SSSP needs weighted edges; SNAP graphs are unweighted, and the paper
    /// (like most SSSP-on-SNAP evaluations) assigns synthetic weights.
    pub fn with_random_weights(&self, max_weight: u32) -> Graph {
        assert!(max_weight >= 1, "max_weight must be at least 1");
        let reweighted = self.adjacency.map_indexed(max_weight);
        Graph::from_coo(reweighted)
    }
}

/// The deterministic per-edge weight in `[1, max_weight]` that
/// [`Graph::with_random_weights`] assigns to edge `(row, col)` — a
/// SplitMix64 finalizer over the packed endpoints. Exposed so the delta
/// layer can weight inserted edges consistently: a mutated weighted graph
/// stays bit-identical to re-weighting its mutated structure from scratch.
pub fn endpoint_weight(row: u32, col: u32, max_weight: u32) -> u32 {
    debug_assert!(max_weight >= 1, "max_weight must be at least 1");
    let mut z = ((row as u64) << 32 | col as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    1 + (z % max_weight as u64) as u32
}

impl Coo<u32> {
    /// Deterministic per-edge weight via [`endpoint_weight`].
    fn map_indexed(&self, max_weight: u32) -> Coo<u32> {
        let mut out = Coo::new(self.n_rows(), self.n_cols());
        for (r, c, _) in self.iter() {
            out.push(r, c, endpoint_weight(r, c, max_weight)).expect("same coordinates as source");
        }
        out
    }
}

fn compute_stats(adj: &Coo<u32>) -> GraphStats {
    let nodes = adj.n_rows();
    let degrees = adj.row_counts();
    let edges = adj.nnz();
    let n = nodes as f64;
    let avg = if nodes == 0 { 0.0 } else { edges as f64 / n };
    let var = if nodes == 0 {
        0.0
    } else {
        degrees.iter().map(|&d| (d as f64 - avg).powi(2)).sum::<f64>() / n
    };
    GraphStats {
        nodes,
        edges,
        avg_degree: avg,
        degree_std: var.sqrt(),
        sparsity: if nodes == 0 { 0.0 } else { edges as f64 / (n * n) },
        max_degree: degrees.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let coo =
            Coo::from_entries(3, 3, vec![(0, 1, 1u32), (1, 2, 1), (2, 0, 1), (0, 2, 1)]).unwrap();
        Graph::from_coo(coo)
    }

    #[test]
    fn stats_match_hand_computation() {
        let g = triangle();
        let s = g.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 4);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
        assert!((s.sparsity - 4.0 / 9.0).abs() < 1e-12);
        // degrees are [2,1,1]; variance = ((2-4/3)² + 2(1-4/3)²)/3
        let var: f64 = ((2.0 - 4.0 / 3.0_f64).powi(2) + 2.0 * (1.0 - 4.0 / 3.0_f64).powi(2)) / 3.0;
        assert!((s.degree_std - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn non_square_matrices_are_padded() {
        let coo = Coo::from_entries(2, 5, vec![(1, 4, 1u32)]).unwrap();
        let g = Graph::from_coo(coo);
        assert_eq!(g.nodes(), 5);
        assert_eq!(g.adjacency().n_rows(), 5);
    }

    #[test]
    fn degrees_are_consistent_with_adjacency() {
        let g = triangle();
        assert_eq!(g.out_degrees(), vec![2, 1, 1]);
        assert_eq!(g.in_degrees(), vec![1, 1, 2]);
    }

    #[test]
    fn random_weights_are_deterministic_and_bounded() {
        let g = triangle();
        let w1 = g.with_random_weights(10);
        let w2 = g.with_random_weights(10);
        assert_eq!(w1.adjacency().vals(), w2.adjacency().vals());
        assert!(w1.adjacency().vals().iter().all(|&w| (1..=10).contains(&w)));
        assert_eq!(w1.edges(), g.edges());
    }

    #[test]
    fn degree_cv_flags_skew() {
        let g = triangle();
        assert!(g.stats().degree_cv() > 0.0);
        let regular =
            Graph::from_coo(Coo::from_entries(2, 2, vec![(0, 1, 1u32), (1, 0, 1)]).unwrap());
        assert_eq!(regular.stats().degree_cv(), 0.0);
    }
}

//! Baseline machine specifications (Table 3) and peak-performance
//! constants (§6.3.2).


/// Micro-architectural specification of one comparison system.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Compute units (CPU cores / CUDA cores / DPUs).
    pub cores: u32,
    /// Clock frequency in Hz.
    pub frequency_hz: u64,
    /// Memory capacity in bytes.
    pub memory_bytes: u64,
    /// Memory bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Peak throughput in FLOP/s (as measured by peakperf / the SparseP
    /// method in the paper).
    pub peak_flops: f64,
}

/// The paper's CPU baseline: Intel Core i7-1265U (Table 3).
pub const CPU: SystemSpec = SystemSpec {
    name: "Intel i7-1265U",
    cores: 10,
    frequency_hz: 1_800_000_000,
    memory_bytes: 64 << 30,
    bandwidth: 83.2e9,
    peak_flops: 647.25e9,
};

/// The paper's GPU baseline: NVIDIA RTX 3050 (Table 3).
pub const GPU: SystemSpec = SystemSpec {
    name: "NVIDIA RTX 3050",
    cores: 2560,
    frequency_hz: 1_550_000_000,
    memory_bytes: 8 << 30,
    bandwidth: 224e9,
    peak_flops: 9.1e12,
};

/// The UPMEM PIM machine of §5.2 (2,560 DPUs; peak via the SparseP
/// method).
pub const UPMEM: SystemSpec = SystemSpec {
    name: "UPMEM PIM (2560 DPUs)",
    cores: 2560,
    frequency_hz: 350_000_000,
    memory_bytes: 160 << 30,
    bandwidth: 2560.0 * 0.63e9,
    peak_flops: 4.66e9,
};

impl SystemSpec {
    /// Peak throughput scaled to a subset of the machine's compute units
    /// (e.g. 2,048 of 2,560 DPUs).
    pub fn peak_flops_for(&self, cores: u32) -> f64 {
        self.peak_flops * cores as f64 / self.cores as f64
    }
}

/// Compute utilization as a percentage of peak (the Table 4 metric):
/// achieved operations per second over peak throughput.
pub fn compute_utilization_pct(ops: u64, seconds: f64, peak_flops: f64) -> f64 {
    if seconds <= 0.0 || peak_flops <= 0.0 {
        return 0.0;
    }
    (ops as f64 / seconds) / peak_flops * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table3() {
        assert_eq!(CPU.cores, 10);
        assert!((CPU.bandwidth - 83.2e9).abs() < 1.0);
        assert_eq!(GPU.cores, 2560);
        assert!((GPU.peak_flops - 9.1e12).abs() < 1.0);
        assert!((UPMEM.peak_flops - 4.66e9).abs() < 1.0);
    }

    #[test]
    fn utilization_is_a_percentage_of_peak() {
        // Half the peak rate → 50 %.
        let pct = compute_utilization_pct(500, 1.0, 1000.0);
        assert!((pct - 50.0).abs() < 1e-9);
        assert_eq!(compute_utilization_pct(10, 0.0, 1000.0), 0.0);
    }

    #[test]
    fn peak_scales_with_core_subset() {
        let scaled = UPMEM.peak_flops_for(2048);
        assert!((scaled - 4.66e9 * 2048.0 / 2560.0).abs() < 1.0);
    }
}

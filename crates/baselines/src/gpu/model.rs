//! Analytical model of the paper's GPU baseline (cuGraph on an RTX 3050).
//!
//! The paper's GPU observations are coarse: the GPU wins on latency and
//! energy, SSSP times are nearly flat across datasets (launch-overhead
//! bound), and utilization is far below peak. A roofline-style model
//! reproduces all three: per-iteration kernel-launch cost plus a
//! memory-bandwidth term, with constants fitted to the paper's Table 4 GPU
//! rows.


use crate::Algorithm;

/// Per-algorithm GPU timing constants.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GpuModel {
    /// Fixed seconds per iteration (kernel launches + sync).
    pub per_iteration_s: f64,
    /// Seconds per edge per iteration (bandwidth term).
    pub per_edge_s: f64,
    /// Seconds per vertex per iteration (frontier/vector traffic).
    pub per_node_s: f64,
}

impl GpuModel {
    /// The fitted model for `algo`.
    pub fn for_algorithm(algo: Algorithm) -> Self {
        match algo {
            Algorithm::Bfs => GpuModel {
                per_iteration_s: 150.0e-6,
                per_edge_s: 0.05e-9,
                per_node_s: 0.05e-9,
            },
            // cuGraph's delta-stepping issues many small launches: the
            // per-iteration term dominates, making SSSP flat across
            // datasets (Table 4: 12.5–13.1 ms everywhere).
            Algorithm::Sssp => GpuModel {
                per_iteration_s: 160.0e-6,
                per_edge_s: 0.03e-9,
                per_node_s: 0.03e-9,
            },
            Algorithm::Ppr => GpuModel {
                per_iteration_s: 420.0e-6,
                per_edge_s: 0.30e-9,
                per_node_s: 0.20e-9,
            },
        }
    }

    /// Predicted kernel seconds (host↔device transfers excluded, as in the
    /// paper).
    pub fn predict_seconds(&self, edges: u64, nodes: u64, iterations: u32) -> f64 {
        iterations as f64
            * (self.per_iteration_s
                + edges as f64 * self.per_edge_s
                + nodes as f64 * self.per_node_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_paper_anchors() {
        let anchors = [
            (Algorithm::Bfs, 899_792u64, 262_111u64, 28, 7.08e-3),
            (Algorithm::Bfs, 12_572, 6_474, 8, 0.89e-3),
            (Algorithm::Sssp, 899_792, 262_111, 70, 12.7e-3),
            (Algorithm::Sssp, 12_572, 6_474, 75, 13.0e-3),
            (Algorithm::Ppr, 899_792, 262_111, 20, 18.2e-3),
            (Algorithm::Ppr, 4_039 * 21, 4_039, 20, 12.7e-3),
        ];
        for (algo, edges, nodes, iters, paper) in anchors {
            let t = GpuModel::for_algorithm(algo).predict_seconds(edges, nodes, iters);
            let ratio = t / paper;
            assert!(
                (0.3..=3.0).contains(&ratio),
                "{algo:?}: model {t:.5}s vs paper {paper:.5}s (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn sssp_is_flat_across_graph_sizes() {
        // The paper's defining GPU observation: SSSP time is launch-bound.
        let m = GpuModel::for_algorithm(Algorithm::Sssp);
        let small = m.predict_seconds(12_572, 6_474, 75);
        let large = m.predict_seconds(899_792, 262_111, 75);
        assert!(large / small < 1.5, "SSSP should be flat: {small} vs {large}");
    }

    #[test]
    fn gpu_is_faster_than_cpu_model() {
        let g = GpuModel::for_algorithm(Algorithm::Bfs).predict_seconds(899_792, 262_111, 28);
        let c = crate::cpu::CpuModel::for_algorithm(Algorithm::Bfs)
            .predict_seconds(899_792, 262_111, 28);
        assert!(c > 10.0 * g, "CPU {c} should be ≫ GPU {g}");
    }
}

//! GPU baseline: the calibrated cuGraph/RTX 3050 analytical model.

mod model;

pub use model::GpuModel;

//! Baselines for the ALPHA-PIM system-level comparison (§6.3.2, Table 4).
//!
//! * [`cpu`] — a real, runnable GridGraph-style multithreaded edge-
//!   streaming engine (used for correctness parity with the PIM
//!   framework) plus a timing model calibrated to the paper's i7-1265U;
//! * [`gpu`] — a roofline-style model of cuGraph on the RTX 3050;
//! * [`specs`] — the Table 3 machine specifications, peak-performance
//!   constants, and the compute-utilization metric.
//!
//! # Example
//!
//! ```
//! use alpha_pim_baselines::cpu::GridEngine;
//! use alpha_pim_sparse::{gen, Graph};
//!
//! # fn main() -> Result<(), alpha_pim_sparse::SparseError> {
//! let graph = Graph::from_coo(gen::erdos_renyi(100, 600, 1)?);
//! let engine = GridEngine::new(&graph, 4, 2);
//! let (levels, stats) = engine.bfs(0);
//! assert_eq!(levels[0], 0);
//! assert!(stats.edges_streamed > 0);
//! # Ok(())
//! # }
//! ```

pub mod cpu;
pub mod gpu;
pub mod specs;

pub use specs::{compute_utilization_pct, SystemSpec, CPU, GPU, UPMEM};

/// The three graph applications of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Breadth-first search.
    Bfs,
    /// Single-source shortest paths.
    Sssp,
    /// Personalized PageRank.
    Ppr,
}

impl Algorithm {
    /// All algorithms, in Table 4 order.
    pub const ALL: [Algorithm; 3] = [Algorithm::Bfs, Algorithm::Sssp, Algorithm::Ppr];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Bfs => "BFS",
            Algorithm::Sssp => "SSSP",
            Algorithm::Ppr => "PPR",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

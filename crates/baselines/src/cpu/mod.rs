//! CPU baseline: a real GridGraph-style engine plus the calibrated timing
//! model of the paper's machine.

mod grid;
mod model;

pub use grid::{CpuRunStats, GridEngine, UNREACHED};
pub use model::CpuModel;

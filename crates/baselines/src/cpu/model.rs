//! Calibrated timing model of the paper's CPU baseline machine.
//!
//! Table 4's CPU rows were measured on an Intel i7-1265U running
//! GridGraph; this container is a different machine, so the harness that
//! regenerates the table uses an analytical model anchored to the paper's
//! published numbers instead of local wall-clock time. The model is the
//! standard edge-streaming decomposition: a fixed per-iteration cost
//! (frontier bookkeeping, block scheduling) plus per-edge and per-vertex
//! streaming costs, with constants fitted per algorithm to the paper's six
//! Table 4 datasets. The *real* runnable engine lives in
//! [`crate::cpu::GridEngine`] and is used for correctness parity.


use crate::Algorithm;

/// Per-algorithm CPU timing constants.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuModel {
    /// Fixed seconds per iteration (scheduling, frontier management).
    pub per_iteration_s: f64,
    /// Seconds per streamed edge per iteration.
    pub per_edge_s: f64,
    /// Seconds per vertex touched per iteration.
    pub per_node_s: f64,
}

impl CpuModel {
    /// The fitted model for `algo`.
    pub fn for_algorithm(algo: Algorithm) -> Self {
        match algo {
            Algorithm::Bfs => CpuModel {
                per_iteration_s: 4.0e-3,
                per_edge_s: 14.0e-9,
                per_node_s: 5.0e-9,
            },
            Algorithm::Sssp => CpuModel {
                per_iteration_s: 4.0e-3,
                per_edge_s: 20.0e-9,
                per_node_s: 5.0e-9,
            },
            Algorithm::Ppr => CpuModel {
                per_iteration_s: 4.0e-3,
                per_edge_s: 7.0e-9,
                per_node_s: 5.0e-9,
            },
        }
    }

    /// Predicted end-to-end seconds for a run that streams all `edges`
    /// and touches all `nodes` in each of `iterations` rounds.
    pub fn predict_seconds(&self, edges: u64, nodes: u64, iterations: u32) -> f64 {
        iterations as f64
            * (self.per_iteration_s
                + edges as f64 * self.per_edge_s
                + nodes as f64 * self.per_node_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The model should land within ~2.5× of every paper-published CPU
    /// number given plausible iteration counts.
    #[test]
    fn model_tracks_paper_anchors() {
        // (algo, edges, nodes, iterations, paper_seconds)
        let anchors = [
            (Algorithm::Bfs, 899_792u64, 262_111u64, 28, 0.5411),
            (Algorithm::Bfs, 12_572, 6_474, 8, 0.0385),
            (Algorithm::Bfs, 88_234, 4_039, 6, 0.0271),
            (Algorithm::Sssp, 899_792, 262_111, 70, 1.900),
            (Algorithm::Sssp, 12_572, 6_474, 12, 0.061),
            (Algorithm::Ppr, 899_792, 262_111, 20, 0.216),
            (Algorithm::Ppr, 88_234, 4_039, 18, 0.084),
        ];
        for (algo, edges, nodes, iters, paper) in anchors {
            let t = CpuModel::for_algorithm(algo).predict_seconds(edges, nodes, iters);
            let ratio = t / paper;
            assert!(
                (0.3..=3.0).contains(&ratio),
                "{algo:?} on {edges} edges: model {t:.4}s vs paper {paper:.4}s (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn prediction_scales_with_inputs() {
        let m = CpuModel::for_algorithm(Algorithm::Bfs);
        assert!(m.predict_seconds(2_000_000, 100_000, 10) > m.predict_seconds(1_000_000, 100_000, 10));
        assert!(m.predict_seconds(1_000_000, 100_000, 20) > m.predict_seconds(1_000_000, 100_000, 10));
        assert_eq!(m.predict_seconds(0, 0, 0), 0.0);
    }
}

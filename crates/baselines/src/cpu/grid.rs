//! GridGraph-style CPU engine: 2-level hierarchical grid partitioning
//! with edge-centric streaming (the paper's CPU baseline library, §6.3.2).
//!
//! Edges are bucketed into a `P × P` grid of blocks by (source range,
//! destination range). Each iteration streams entire grid *columns* in
//! parallel: all edges in column `j` write only to vertex range `j`, so
//! worker threads own disjoint output slices and need no atomics —
//! GridGraph's central trick.

use std::ops::Range;
use std::time::Instant;

use alpha_pim_sim::par::par_fold_mut;
use alpha_pim_sparse::partition::equal_ranges;
use alpha_pim_sparse::Graph;

/// Level / distance marker for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Statistics of one CPU baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuRunStats {
    /// Iterations executed (BFS levels, relaxation rounds, or power
    /// iterations).
    pub iterations: u32,
    /// Measured wall-clock seconds on this machine.
    pub wall_seconds: f64,
    /// Total edges streamed across all iterations.
    pub edges_streamed: u64,
    /// Semiring-equivalent useful operations (2 per processed edge).
    pub useful_ops: u64,
}

/// A graph loaded into the grid-partitioned CPU engine.
#[derive(Debug)]
pub struct GridEngine {
    n: u32,
    p: u32,
    threads: u32,
    ranges: Vec<Range<u32>>,
    /// `blocks[i * p + j]`: edges with source in range `i`, destination in
    /// range `j`.
    blocks: Vec<Vec<(u32, u32, u32)>>,
    out_degrees: Vec<u32>,
}

impl GridEngine {
    /// Partitions `graph` into a `partitions × partitions` grid, streamed
    /// by `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` or `threads` is zero.
    pub fn new(graph: &Graph, partitions: u32, threads: u32) -> Self {
        assert!(partitions > 0, "partitions must be positive");
        assert!(threads > 0, "threads must be positive");
        let n = graph.nodes();
        let p = partitions.min(n.max(1));
        let ranges = equal_ranges(n, p);
        let mut part_of = vec![0u32; n as usize];
        for (i, r) in ranges.iter().enumerate() {
            for v in r.clone() {
                part_of[v as usize] = i as u32;
            }
        }
        let mut blocks: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); (p * p) as usize];
        for (u, v, w) in graph.adjacency().iter() {
            let (i, j) = (part_of[u as usize], part_of[v as usize]);
            blocks[(i * p + j) as usize].push((u, v, w));
        }
        GridEngine { n, p, threads, ranges, blocks, out_degrees: graph.out_degrees() }
    }

    /// Number of vertices.
    pub fn nodes(&self) -> u32 {
        self.n
    }

    /// The grid dimension actually used.
    pub fn partitions(&self) -> u32 {
        self.p
    }

    /// Streams every grid column in parallel: `fold(j, &mut out_slice)`
    /// receives the column index and the exclusively-owned output slice
    /// for vertex range `j`, and returns the number of edges it processed.
    fn stream_columns<T: Send>(
        &self,
        out: &mut [T],
        fold: impl Fn(u32, &mut [T]) -> u64 + Sync,
    ) -> u64 {
        // Carve the output into per-range slices that threads own.
        let mut tasks: Vec<(u32, &mut [T])> = Vec::with_capacity(self.p as usize);
        let mut rest = out;
        for (j, r) in self.ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut((r.end - r.start) as usize);
            tasks.push((j as u32, head));
            rest = tail;
        }
        // Group the column tasks exactly as before (`self.threads` contiguous
        // chunks) and hand the groups to the shared scoped pool; effective
        // parallelism is min(self.threads, ALPHA_PIM_THREADS).
        let chunk = tasks.len().div_ceil(self.threads as usize).max(1);
        let mut groups: Vec<Vec<(u32, &mut [T])>> = Vec::new();
        let mut tasks = tasks.into_iter();
        loop {
            let group: Vec<_> = tasks.by_ref().take(chunk).collect();
            if group.is_empty() {
                break;
            }
            groups.push(group);
        }
        par_fold_mut(&mut groups, |group| {
            let mut local = 0u64;
            for (j, slice) in group.iter_mut() {
                local += fold(*j, slice);
            }
            local
        })
    }

    /// Edge blocks feeding destination range `j`.
    fn column_blocks(&self, j: u32) -> impl Iterator<Item = &[(u32, u32, u32)]> {
        (0..self.p).map(move |i| self.blocks[(i * self.p + j) as usize].as_slice())
    }

    /// Breadth-first search from `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn bfs(&self, source: u32) -> (Vec<u32>, CpuRunStats) {
        assert!(source < self.n, "source {source} out of range");
        let start = Instant::now();
        let mut levels = vec![UNREACHED; self.n as usize];
        levels[source as usize] = 0;
        let mut active = vec![false; self.n as usize];
        active[source as usize] = true;
        let mut iterations = 0;
        let mut edges_streamed = 0u64;
        let mut useful = 0u64;
        loop {
            iterations += 1;
            let snapshot = active.clone();
            let level = iterations;
            let ranges = &self.ranges;
            let mut next = vec![false; self.n as usize];
            edges_streamed += self.stream_columns(&mut next[..], |j, slice| {
                let base = ranges[j as usize].start as usize;
                let mut seen = 0u64;
                for block in self.column_blocks(j) {
                    seen += block.len() as u64;
                    for &(u, v, _) in block {
                        if snapshot[u as usize] && levels[v as usize] == UNREACHED {
                            slice[v as usize - base] = true;
                        }
                    }
                }
                seen
            });
            let mut any = false;
            for (v, &f) in next.iter().enumerate() {
                if f && levels[v] == UNREACHED {
                    levels[v] = level;
                    any = true;
                    useful += 2;
                }
            }
            active = next;
            if !any || iterations >= self.n {
                break;
            }
        }
        let stats = CpuRunStats {
            iterations,
            wall_seconds: start.elapsed().as_secs_f64(),
            edges_streamed,
            useful_ops: useful.max(edges_streamed * 2),
        };
        (levels, stats)
    }

    /// Single-source shortest paths (Jacobi-style Bellman–Ford) from
    /// `source` over the graph's edge weights.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn sssp(&self, source: u32) -> (Vec<u32>, CpuRunStats) {
        assert!(source < self.n, "source {source} out of range");
        let start = Instant::now();
        let mut dist = vec![UNREACHED; self.n as usize];
        dist[source as usize] = 0;
        let mut active = vec![false; self.n as usize];
        active[source as usize] = true;
        let mut iterations = 0;
        let mut edges_streamed = 0u64;
        loop {
            iterations += 1;
            let snapshot_dist = dist.clone();
            let snapshot_active = active.clone();
            let ranges = &self.ranges;
            edges_streamed += self.stream_columns(&mut dist[..], |j, slice| {
                let base = ranges[j as usize].start as usize;
                let mut seen = 0u64;
                for block in self.column_blocks(j) {
                    seen += block.len() as u64;
                    for &(u, v, w) in block {
                        if snapshot_active[u as usize] {
                            let cand = snapshot_dist[u as usize].saturating_add(w);
                            let slot = &mut slice[v as usize - base];
                            if cand < *slot {
                                *slot = cand;
                            }
                        }
                    }
                }
                seen
            });
            let mut any = false;
            for v in 0..self.n as usize {
                let improved = dist[v] < snapshot_dist[v];
                active[v] = improved;
                any |= improved;
            }
            if !any || iterations >= self.n {
                break;
            }
        }
        let stats = CpuRunStats {
            iterations,
            wall_seconds: start.elapsed().as_secs_f64(),
            edges_streamed,
            useful_ops: edges_streamed * 2,
        };
        (dist, stats)
    }

    /// Personalized PageRank from `source` with damping `alpha`, stopping
    /// at L1 change `tolerance` or after `max_iterations`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn ppr(
        &self,
        source: u32,
        alpha: f32,
        tolerance: f32,
        max_iterations: u32,
    ) -> (Vec<f32>, CpuRunStats) {
        assert!(source < self.n, "source {source} out of range");
        let start = Instant::now();
        let mut scores = vec![0.0f32; self.n as usize];
        scores[source as usize] = 1.0;
        let mut iterations = 0;
        let mut edges_streamed = 0u64;
        for _ in 0..max_iterations {
            iterations += 1;
            let snapshot = scores.clone();
            let degrees = &self.out_degrees;
            let ranges = &self.ranges;
            let mut y = vec![0.0f32; self.n as usize];
            edges_streamed += self.stream_columns(&mut y[..], |j, slice| {
                let base = ranges[j as usize].start as usize;
                let mut seen = 0u64;
                for block in self.column_blocks(j) {
                    seen += block.len() as u64;
                    for &(u, v, _) in block {
                        let d = degrees[u as usize];
                        if d > 0 {
                            slice[v as usize - base] += snapshot[u as usize] / d as f32;
                        }
                    }
                }
                seen
            });
            let mut delta = 0.0f32;
            for (v, yv) in y.iter().enumerate() {
                let teleport = if v as u32 == source { 1.0 - alpha } else { 0.0 };
                let next = alpha * yv + teleport;
                delta += (next - scores[v]).abs();
                scores[v] = next;
            }
            if delta <= tolerance {
                break;
            }
        }
        let stats = CpuRunStats {
            iterations,
            wall_seconds: start.elapsed().as_secs_f64(),
            edges_streamed,
            useful_ops: edges_streamed * 2,
        };
        (scores, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_pim_sparse::{gen, Coo};

    fn chain() -> Graph {
        Graph::from_coo(
            Coo::from_entries(4, 4, vec![(0, 1, 1u32), (1, 2, 1), (2, 3, 1), (0, 2, 5)])
                .unwrap(),
        )
    }

    #[test]
    fn bfs_finds_hop_levels() {
        let e = GridEngine::new(&chain(), 2, 2);
        let (levels, stats) = e.bfs(0);
        assert_eq!(levels, vec![0, 1, 1, 2]);
        assert!(stats.iterations >= 2);
        assert!(stats.edges_streamed > 0);
    }

    #[test]
    fn sssp_respects_weights() {
        let e = GridEngine::new(&chain(), 2, 2);
        let (dist, _) = e.sssp(0);
        // 0→1 (1) →2 (2) beats the direct 0→2 (5).
        assert_eq!(dist, vec![0, 1, 2, 3]);
    }

    #[test]
    fn grid_engine_matches_single_partition_results() {
        let g = Graph::from_coo(gen::erdos_renyi(120, 900, 3).unwrap()).with_random_weights(9);
        let coarse = GridEngine::new(&g, 1, 1);
        let fine = GridEngine::new(&g, 8, 4);
        assert_eq!(coarse.bfs(0).0, fine.bfs(0).0);
        assert_eq!(coarse.sssp(0).0, fine.sssp(0).0);
        let (a, _) = coarse.ppr(0, 0.85, 1e-5, 40);
        let (b, _) = fine.ppr(0, 0.85, 1e-5, 40);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn ppr_mass_stays_near_source() {
        let g = Graph::from_coo(gen::erdos_renyi(60, 400, 8).unwrap());
        let e = GridEngine::new(&g, 4, 2);
        let (scores, stats) = e.ppr(5, 0.85, 1e-6, 60);
        assert!(stats.iterations > 1);
        let max = scores.iter().cloned().fold(0.0f32, f32::max);
        assert!(scores[5] >= 0.5 * max);
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let g = Graph::from_coo(Coo::from_entries(3, 3, vec![(0, 1, 1u32)]).unwrap());
        let e = GridEngine::new(&g, 2, 1);
        let (levels, _) = e.bfs(0);
        assert_eq!(levels[2], UNREACHED);
        let (dist, _) = e.sssp(0);
        assert_eq!(dist[2], UNREACHED);
    }

    #[test]
    fn more_partitions_than_nodes_is_clamped() {
        let g = chain();
        let e = GridEngine::new(&g, 64, 2);
        assert!(e.partitions() <= 4);
        assert_eq!(e.bfs(0).0, vec![0, 1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_rejects_bad_source() {
        GridEngine::new(&chain(), 2, 1).bfs(10);
    }
}

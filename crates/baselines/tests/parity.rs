//! Parity tests: the CPU baseline engine and the PIM framework must agree
//! on algorithmic results — the same property the paper relies on when
//! comparing systems.

use alpha_pim::apps::{AppOptions, PprOptions};
use alpha_pim::AlphaPim;
use alpha_pim_baselines::cpu::GridEngine;
use alpha_pim_sim::{PimConfig, SimFidelity};
use alpha_pim_sparse::{gen, Graph};

fn engine() -> AlphaPim {
    AlphaPim::new(PimConfig {
        num_dpus: 8,
        fidelity: SimFidelity::Full,
        ..Default::default()
    })
    .unwrap()
}

fn test_graph(seed: u64) -> Graph {
    Graph::from_coo(gen::erdos_renyi(150, 1100, seed).unwrap()).with_random_weights(9)
}

#[test]
fn bfs_levels_agree_between_cpu_and_pim() {
    let g = test_graph(1);
    let pim = engine().bfs(&g, 0, &AppOptions::default()).unwrap();
    let cpu = GridEngine::new(&g, 6, 2).bfs(0);
    assert_eq!(pim.levels, cpu.0);
}

#[test]
fn sssp_distances_agree_between_cpu_and_pim() {
    let g = test_graph(2);
    let pim = engine().sssp(&g, 3, &AppOptions::default()).unwrap();
    let cpu = GridEngine::new(&g, 6, 2).sssp(3);
    assert_eq!(pim.distances, cpu.0);
}

#[test]
fn ppr_scores_agree_between_cpu_and_pim() {
    let g = test_graph(3);
    let options = PprOptions { tolerance: 1e-6, ..Default::default() };
    let pim = engine().ppr(&g, 7, &options).unwrap();
    let cpu = GridEngine::new(&g, 6, 2).ppr(7, 0.85, 1e-6, 50);
    for (a, b) in pim.scores.iter().zip(&cpu.0) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }
}

#[test]
fn road_class_graph_agrees_too() {
    let g = Graph::from_coo(gen::road_network(500, 2.8, 11).unwrap()).with_random_weights(5);
    let pim = engine().sssp(&g, 0, &AppOptions::default()).unwrap();
    let cpu = GridEngine::new(&g, 4, 2).sssp(0);
    assert_eq!(pim.distances, cpu.0);
}

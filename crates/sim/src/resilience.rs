//! Host-side resilience policy: what the runtime does once a fault is
//! detected.
//!
//! The [`crate::faults`] oracle decides *what breaks*; this module holds the
//! recovery math and accounting shared by the evaluation path
//! ([`crate::report`]), the transfer layer ([`crate::system`]), and the CLI's
//! chaos report. Three responses, in escalation order:
//!
//! 1. **Bounded retry with exponential backoff** — ECC events on DMA and
//!    transfer timeouts are retried up to `max_retries` times, each round
//!    waiting `backoff_base_cycles << round` simulated cycles.
//! 2. **Partition redistribution** — a dead DPU's row block is re-run on a
//!    healthy DPU (serialized after its own work, so the penalty is the
//!    block's own makespan plus one detection window).
//! 3. **Graceful degradation** — with redistribution disabled or no healthy
//!    DPU left, the kernel completes without the dead partitions and the
//!    report carries a `degraded` flag plus per-fault accounting.

use crate::config::ResiliencePolicy;
use crate::counters::{CounterId, CounterSet};

/// Total backoff wait of `retries` exponential rounds, in simulated cycles
/// (`base, 2·base, 4·base, …`; the shift is capped so the sum stays finite
/// for adversarial retry counts, and the whole sum saturates at
/// `u64::MAX` rather than overflowing for adversarial base cycles).
pub fn backoff_cycles(policy: &ResiliencePolicy, retries: u32) -> u64 {
    crate::faults::saturating_backoff(policy.backoff_base_cycles, retries)
}

/// Wall-clock seconds a transfer timeout adds: each retry re-sends the
/// whole batch and then waits out its backoff window.
pub fn timeout_penalty_seconds(
    policy: &ResiliencePolicy,
    batch_seconds: f64,
    retries: u32,
    cycle_seconds: f64,
) -> f64 {
    crate::transfer::retransmit_seconds(batch_seconds, retries)
        + backoff_cycles(policy, retries) as f64 * cycle_seconds
}

/// Records one detected-and-recovered transfer timeout with its retry
/// rounds into `events`.
pub fn record_timeout(events: &mut CounterSet, retries: u32) {
    events.add(CounterId::FaultTimeouts, 1);
    events.add(CounterId::FaultRetries, retries as u64);
    events.add(CounterId::FaultsInjected, 1);
    events.add(CounterId::FaultsDetected, 1);
    events.add(CounterId::FaultsRecovered, 1);
}

/// The resilience ledger of one run, decoded from the counter registry.
/// `injected == detected` and `detected == recovered + lost` hold by
/// construction; the invariant suite asserts both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Faults the plan injected.
    pub injected: u64,
    /// Faults the host detected (ECC events, heartbeat losses, timeouts).
    pub detected: u64,
    /// Faults recovered by retry or redistribution.
    pub recovered: u64,
    /// Faults that cost functional results (dropped partitions).
    pub lost: u64,
    /// Total retry rounds across ECC scrubs and transfer re-sends.
    pub retries: u64,
    /// Dead-DPU row blocks re-run on healthy DPUs.
    pub redistributions: u64,
    /// Transfer batches that timed out.
    pub timeouts: u64,
    /// Makespan cycles lost to stragglers (detailed DPUs only).
    pub straggler_cycles: u64,
    /// Makespan cycles lost to retry/redistribution (detailed DPUs only).
    pub retry_cycles: u64,
}

impl FaultSummary {
    /// Decodes the ledger from a merged counter set (e.g. a
    /// `KernelReport`'s breakdown counters).
    pub fn from_counters(c: &CounterSet) -> Self {
        FaultSummary {
            injected: c.get(CounterId::FaultsInjected),
            detected: c.get(CounterId::FaultsDetected),
            recovered: c.get(CounterId::FaultsRecovered),
            lost: c.get(CounterId::FaultsLost),
            retries: c.get(CounterId::FaultRetries),
            redistributions: c.get(CounterId::FaultRedistributions),
            timeouts: c.get(CounterId::FaultTimeouts),
            straggler_cycles: c.get(CounterId::FaultStragglerCycles),
            retry_cycles: c.get(CounterId::FaultRetryCycles),
        }
    }

    /// Total fault-attributed cycles (the `slot.fault` bucket).
    pub fn fault_cycles(&self) -> u64 {
        self.straggler_cycles + self.retry_cycles
    }

    /// Whether every detected fault was recovered.
    pub fn fully_recovered(&self) -> bool {
        self.lost == 0
    }
}

/// Sum of the fault-cycle buckets in `c` — must equal `SlotFault` (the
/// zero-remainder sub-partition the invariant suite checks).
pub fn fault_cycle_sum(c: &CounterSet) -> u64 {
    c.sum(&CounterId::FAULT_CYCLES)
}

/// The crash-recovery ledger of one serving batch, decoded from the
/// `ckpt.*` / `serve.shed` counters the checkpointing engine maintains.
///
/// These are event counters, not cycle buckets: they sit outside the
/// zero-remainder cycle partitions, and `restores` is the one counter
/// allowed to differ between a resumed run and its uninterrupted twin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Snapshots taken at superstep boundaries.
    pub snapshots: u64,
    /// Bytes sealed into snapshots and journal records (checkpoint
    /// overhead, headers included).
    pub bytes: u64,
    /// Batches restored from a checkpoint.
    pub restores: u64,
    /// Queries shed for blowing their cycle deadline budget.
    pub shed: u64,
}

impl RecoverySummary {
    /// Decodes the ledger from a merged counter set (e.g. a
    /// `BatchReport`'s counters).
    pub fn from_counters(c: &CounterSet) -> Self {
        RecoverySummary {
            snapshots: c.get(CounterId::CkptSnapshots),
            bytes: c.get(CounterId::CkptBytes),
            restores: c.get(CounterId::CkptRestores),
            shed: c.get(CounterId::ServeShed),
        }
    }

    /// Whether checkpointing and shedding never fired (the byte-identical
    /// fast path).
    pub fn is_empty(&self) -> bool {
        *self == RecoverySummary::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ResiliencePolicy {
        ResiliencePolicy::default()
    }

    #[test]
    fn backoff_doubles_each_round() {
        let p = policy();
        let b = p.backoff_base_cycles;
        assert_eq!(backoff_cycles(&p, 0), 0);
        assert_eq!(backoff_cycles(&p, 1), b);
        assert_eq!(backoff_cycles(&p, 4), b * (1 + 2 + 4 + 8));
    }

    #[test]
    fn backoff_shift_is_capped() {
        let p = policy();
        // 64 rounds would otherwise shift past the word width.
        assert!(backoff_cycles(&p, 64) > backoff_cycles(&p, 32));
    }

    #[test]
    fn backoff_never_overflows_for_extreme_policies() {
        let mut p = policy();
        p.backoff_base_cycles = u64::MAX;
        assert_eq!(backoff_cycles(&p, u32::MAX), u64::MAX);
        assert_eq!(backoff_cycles(&p, 0), 0);
        p.backoff_base_cycles = 1 << 62;
        assert_eq!(backoff_cycles(&p, 100), u64::MAX);
    }

    #[test]
    fn timeout_penalty_charges_resends_and_backoff() {
        let p = policy();
        let cycle_s = 1e-9;
        let pen = timeout_penalty_seconds(&p, 2.0e-3, 2, cycle_s);
        let expected = 2.0 * 2.0e-3 + (p.backoff_base_cycles * 3) as f64 * cycle_s;
        assert!((pen - expected).abs() < 1e-15, "pen={pen} expected={expected}");
        assert_eq!(timeout_penalty_seconds(&p, 2.0e-3, 0, cycle_s), 0.0);
    }

    #[test]
    fn recorded_timeouts_keep_the_ledger_balanced() {
        let mut c = CounterSet::new();
        record_timeout(&mut c, 3);
        record_timeout(&mut c, 1);
        let s = FaultSummary::from_counters(&c);
        assert_eq!(s.injected, s.detected);
        assert_eq!(s.detected, s.recovered + s.lost);
        assert_eq!(s.timeouts, 2);
        assert_eq!(s.retries, 4);
        assert!(s.fully_recovered());
    }

    #[test]
    fn recovery_summary_decodes_the_ckpt_counters() {
        let mut c = CounterSet::new();
        assert!(RecoverySummary::from_counters(&c).is_empty());
        c.add(CounterId::CkptSnapshots, 3);
        c.add(CounterId::CkptBytes, 4096);
        c.add(CounterId::CkptRestores, 1);
        c.add(CounterId::ServeShed, 2);
        let s = RecoverySummary::from_counters(&c);
        assert_eq!(s, RecoverySummary { snapshots: 3, bytes: 4096, restores: 1, shed: 2 });
        assert!(!s.is_empty());
    }

    #[test]
    fn summary_round_trips_the_cycle_buckets() {
        let mut c = CounterSet::new();
        c.add(CounterId::FaultStragglerCycles, 120);
        c.add(CounterId::FaultRetryCycles, 80);
        let s = FaultSummary::from_counters(&c);
        assert_eq!(s.fault_cycles(), 200);
        assert_eq!(fault_cycle_sum(&c), 200);
    }
}

//! The analytic fast-path performance model: closed-form makespan and
//! counter prediction with no event emission or replay.
//!
//! Under [`crate::config::SimFidelity::Analytic`], kernels record
//! [`TaskletStats`] — O(1)-space scalar accumulators — instead of
//! [`crate::trace::TaskletTrace`] event vectors, and [`predict_dpu`]
//! produces a [`DpuProfile`] directly from those statistics plus the
//! [`PipelineConfig`]. The functional kernel math still runs, so result
//! values, DMA/mutex/barrier event counts, and traffic bytes are *exact*;
//! only the cycle attribution is modeled.
//!
//! # The model
//!
//! Work is segmented at barriers (every tasklet's segment `k` must finish
//! before any tasklet starts segment `k+1`), and each segment's makespan is
//! the maximum of four lower bounds, mirroring the regimes the
//! discrete-event pipeline exhibits (see `DESIGN.md` §13):
//!
//! 1. **Issue (water-fill)** — with `A` tasklets still running, the issue
//!    slot retires at most one instruction per cycle and one per
//!    `max(P, A)` cycles per tasklet (`P` = revolver period). Sorting
//!    per-tasklet instruction counts and integrating level by level gives
//!    the classic water-fill bound, minus the final instruction's unneeded
//!    `P − 1` spacing.
//! 2. **Serial span** — each tasklet alone needs `P` cycles per non-DMA
//!    instruction, its full blocking-DMA cycles, and its expected
//!    register-file hazard penalties.
//! 3. **DMA engine** — the per-DPU DMA engine is serialized: all transfers
//!    of all tasklets queue through it, after a ramp-up of the fastest
//!    tasklet's pre-DMA instructions.
//! 4. **Mutex serialization** — critical sections on one mutex are
//!    mutually exclusive, so their issue-spaced lengths sum.
//!
//! The DPU makespan is the sum of segment bounds plus the pipeline drain.
//! Slot- and tasklet-level counters are synthesized to satisfy the same
//! zero-remainder invariants the replayer guarantees
//! (`Σ SLOT_CYCLES == dpu.cycles`, per-tasklet `Σ TASKLET_CYCLES ==
//! dpu.cycles`), with exact event counters and `SpinRetries == 0` (spin
//! retries are a contention artifact only the replayer observes).

use crate::config::PipelineConfig;
use crate::counters::{CounterId, CounterSet};
use crate::instr::{InstrClass, InstrMix};
use crate::report::{DpuProfile, DpuReport};
use crate::trace::Record;

/// Mutexes tracked per DPU (UPMEM kernels use a fixed pool of 16).
pub const TRACKED_MUTEXES: usize = 16;

/// Closed-form statistics of one barrier-delimited segment of a tasklet.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SegmentStats {
    /// Instructions issued (compute + one per DMA, mutex op, barrier).
    pub instructions: u64,
    /// Instructions of register-reading classes (hazard candidates).
    pub reg_read_instrs: u64,
    /// Instructions issued before the segment's first DMA.
    pub pre_dma_instrs: u64,
    /// Instruction count observed right after the segment's last DMA
    /// (so `instructions - instrs_at_last_dma` is the post-DMA tail).
    pub instrs_at_last_dma: u64,
    /// Blocking DMA transfers launched.
    pub dma_transfers: u64,
    /// Bytes moved by DMA.
    pub dma_bytes: u64,
    /// Total engine cycles of the segment's transfers (startup + stream).
    pub dma_cycles: u64,
    /// Mutex acquisitions per mutex id.
    pub mutex_acquires: [u64; TRACKED_MUTEXES],
    /// Instructions issued while holding each mutex.
    pub mutex_held_instrs: [u64; TRACKED_MUTEXES],
    /// Whether the segment was closed by a barrier arrival.
    pub ends_with_barrier: bool,
}

impl SegmentStats {
    fn is_empty(&self) -> bool {
        self.instructions == 0
    }
}

/// The analytic recorder: accumulates [`SegmentStats`] from the same
/// [`Record`] calls a [`crate::trace::TaskletTrace`] would log as events.
/// Construction captures the DMA cost constants so per-transfer cycle
/// counts match [`PipelineConfig::dma_cycles`] exactly.
#[derive(Debug, Clone)]
pub struct TaskletStats {
    dma_startup_cycles: u64,
    dma_cycles_per_byte: f64,
    mix: InstrMix,
    closed: Vec<SegmentStats>,
    current: SegmentStats,
    held_mask: u32,
}

impl TaskletStats {
    /// An empty recorder using `cfg`'s DMA cost constants.
    pub fn new(cfg: &PipelineConfig) -> Self {
        TaskletStats {
            dma_startup_cycles: cfg.dma_startup_cycles as u64,
            dma_cycles_per_byte: cfg.dma_cycles_per_byte,
            mix: InstrMix::new(),
            closed: Vec::new(),
            current: SegmentStats::default(),
            held_mask: 0,
        }
    }

    fn transfer_cycles(&self, bytes: u32) -> u64 {
        self.dma_startup_cycles + (bytes as f64 * self.dma_cycles_per_byte).ceil() as u64
    }

    /// Bumps shared per-instruction state for `count` instructions.
    fn issue(&mut self, count: u64) {
        self.current.instructions += count;
        if self.current.dma_transfers == 0 {
            self.current.pre_dma_instrs += count;
        }
        if self.held_mask != 0 {
            let mut mask = self.held_mask;
            while mask != 0 {
                let id = mask.trailing_zeros() as usize;
                self.current.mutex_held_instrs[id] += count;
                mask &= mask - 1;
            }
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.closed.is_empty() && self.current.is_empty()
    }

    /// Total instructions recorded.
    pub fn instructions(&self) -> u64 {
        self.closed.iter().map(|s| s.instructions).sum::<u64>() + self.current.instructions
    }

    /// Total bytes moved by DMA.
    pub fn dma_bytes(&self) -> u64 {
        self.closed.iter().map(|s| s.dma_bytes).sum::<u64>() + self.current.dma_bytes
    }

    /// Exact instruction-mix histogram (identical to the trace recorder's).
    pub fn instr_mix(&self) -> InstrMix {
        self.mix
    }

    /// The segments recorded so far: every barrier-closed segment plus the
    /// trailing open one if it holds any instructions.
    pub fn segments(&self) -> Vec<SegmentStats> {
        let mut out = self.closed.clone();
        if !self.current.is_empty() {
            out.push(self.current);
        }
        out
    }
}

impl Record for TaskletStats {
    fn compute(&mut self, class: InstrClass, count: u32) {
        if count == 0 {
            return;
        }
        self.mix.add(class, count as u64);
        if class.reads_registers() {
            self.current.reg_read_instrs += count as u64;
        }
        self.issue(count as u64);
    }

    fn dma(&mut self, bytes: u32) {
        if bytes == 0 {
            return;
        }
        self.mix.add(InstrClass::Dma, 1);
        self.issue(1);
        self.current.dma_transfers += 1;
        self.current.dma_bytes += bytes as u64;
        self.current.dma_cycles += self.transfer_cycles(bytes);
        self.current.instrs_at_last_dma = self.current.instructions;
    }

    fn dma_stream(&mut self, total_bytes: u64, chunk_bytes: u32, per_chunk_overhead: u32) {
        assert!(chunk_bytes > 0, "chunk_bytes must be positive");
        if total_bytes == 0 {
            return;
        }
        // Closed form of the chunk loop: `full` whole chunks plus an
        // optional remainder, each transfer costed individually (per-chunk
        // ceil sums differ from the ceil of the sum).
        let full = total_bytes / chunk_bytes as u64;
        let rem = (total_bytes % chunk_bytes as u64) as u32;
        let chunks = full + u64::from(rem > 0);
        self.mix.add(InstrClass::Dma, chunks);
        self.mix.add(InstrClass::Control, chunks * per_chunk_overhead as u64);
        self.issue(chunks * (1 + per_chunk_overhead as u64));
        self.current.dma_transfers += chunks;
        self.current.dma_bytes += total_bytes;
        self.current.dma_cycles += full * self.transfer_cycles(chunk_bytes)
            + if rem > 0 { self.transfer_cycles(rem) } else { 0 };
        self.current.instrs_at_last_dma = self.current.instructions;
    }

    fn mutex_lock(&mut self, id: u16) {
        self.mix.add(InstrClass::Sync, 1);
        self.issue(1);
        let id = (id as usize).min(TRACKED_MUTEXES - 1);
        self.current.mutex_acquires[id] += 1;
        self.held_mask |= 1 << id;
    }

    fn mutex_unlock(&mut self, id: u16) {
        self.mix.add(InstrClass::Sync, 1);
        let id = (id as usize).min(TRACKED_MUTEXES - 1);
        self.held_mask &= !(1 << id);
        self.issue(1);
    }

    fn barrier(&mut self) {
        self.mix.add(InstrClass::Sync, 1);
        self.issue(1);
        self.current.ends_with_barrier = true;
        let seg = std::mem::take(&mut self.current);
        self.closed.push(seg);
    }
}

/// One tasklet in the fluid staggered-release model: `pre` issue slots of
/// work available immediately, then a gate (its last engine-serialized DMA
/// completion), then `post` issue slots of tail work.
#[derive(Debug, Clone, Copy)]
struct FluidThread {
    pre: f64,
    post: f64,
    gate: f64,
}

/// Drains the threads' work through the single issue slot as a fluid:
/// every running thread issues at most one instruction per revolver period
/// `p`, the slot at most one per cycle (shared equally beyond `p` runnable
/// threads), and a thread's `post` work only starts once its `pre` work is
/// done *and* its gate time has passed. Returns the drain completion time.
fn fluid_drain(mut threads: Vec<FluidThread>, p: f64) -> f64 {
    const EPS: f64 = 1e-9;
    let mut t = 0.0f64;
    loop {
        let mut active = 0usize;
        let mut next_gate = f64::INFINITY;
        for th in &threads {
            if th.pre > EPS {
                active += 1;
            } else if th.post > EPS {
                if th.gate <= t + EPS {
                    active += 1;
                } else {
                    next_gate = next_gate.min(th.gate);
                }
            }
        }
        if active == 0 {
            if next_gate.is_finite() {
                t = next_gate;
                continue;
            }
            return t;
        }
        let rate = 1.0 / p.max(active as f64);
        let mut min_work = f64::INFINITY;
        for th in &threads {
            if th.pre > EPS {
                min_work = min_work.min(th.pre);
            } else if th.post > EPS && th.gate <= t + EPS {
                min_work = min_work.min(th.post);
            }
        }
        let dt = (min_work / rate).min(next_gate - t).max(EPS);
        for th in &mut threads {
            if th.pre > EPS {
                th.pre = (th.pre - rate * dt).max(0.0);
            } else if th.post > EPS && th.gate <= t + EPS {
                th.post = (th.post - rate * dt).max(0.0);
            }
        }
        t += dt;
    }
}

/// Per-tasklet totals accumulated across segments while predicting, used
/// for the counter synthesis.
#[derive(Debug, Clone, Copy, Default)]
struct TaskletTotals {
    instructions: u64,
    dma_transfers: u64,
    dma_bytes: u64,
    dma_cycles: u64,
    rf_cycles: u64,
    mutex_acquires: u64,
    barriers: u64,
}

/// Predicts one DPU's makespan and full observability profile from its
/// tasklets' closed-form statistics — the analytic replacement for
/// [`crate::pipeline::simulate_dpu_profiled`].
pub fn predict_dpu(stats: &[TaskletStats], cfg: &PipelineConfig) -> DpuProfile {
    let n_tasklets = stats.len();
    let per_tasklet: Vec<Vec<SegmentStats>> = stats.iter().map(|s| s.segments()).collect();
    let levels = per_tasklet.iter().map(|s| s.len()).max().unwrap_or(0);
    let p = cfg.revolver_period.max(1) as u64;
    let penalty = cfg.rf_hazard_penalty as u64;
    let mut totals = vec![TaskletTotals::default(); n_tasklets];
    let mut body_cycles = 0u64;
    let empty = SegmentStats::default();
    for level in 0..levels {
        let segs: Vec<&SegmentStats> =
            per_tasklet.iter().map(|s| s.get(level).unwrap_or(&empty)).collect();
        let live = segs.iter().filter(|s| !s.is_empty()).count() as u64;
        if live == 0 {
            continue;
        }
        let spacing = p.max(live);

        // Bound 1: water-fill over the issue slot.
        let mut ns: Vec<u64> = segs.iter().map(|s| s.instructions).collect();
        ns.sort_unstable();
        let total_instrs: u64 = ns.iter().sum();
        let mut water_fill = 0u64;
        let mut prev = 0u64;
        for (k, &n) in ns.iter().enumerate() {
            let active = (ns.len() - k) as u64;
            water_fill += (n - prev) * p.max(active);
            prev = n;
        }
        let issue_bound = total_instrs.max(water_fill.saturating_sub(p - 1));

        // Bound 2: the longest single tasklet's serial span.
        let mut serial_bound = 0u64;
        let mut level_dma_cycles = 0u64;
        let mut ramp = u64::MAX;
        for (i, s) in segs.iter().enumerate() {
            let rf = (s.reg_read_instrs as f64 * cfg.rf_hazard_rate) as u64 * penalty;
            let dma_wait = if cfg.non_blocking_dma { 0 } else { s.dma_cycles };
            let serial = ((s.instructions - s.dma_transfers.min(s.instructions)) * p
                + dma_wait
                + rf)
                .saturating_sub(p - 1);
            serial_bound = serial_bound.max(serial);
            level_dma_cycles += s.dma_cycles;
            if s.dma_transfers > 0 {
                ramp = ramp.min(s.pre_dma_instrs * spacing);
            }
            let t = &mut totals[i];
            t.instructions += s.instructions;
            t.dma_transfers += s.dma_transfers;
            t.dma_bytes += s.dma_bytes;
            t.dma_cycles += if cfg.non_blocking_dma { 0 } else { s.dma_cycles };
            t.rf_cycles += rf;
            t.mutex_acquires += s.mutex_acquires.iter().sum::<u64>();
            t.barriers += u64::from(s.ends_with_barrier);
        }

        // Bound 3: the serialized DMA engine, after the fastest ramp-up.
        let engine_bound = if level_dma_cycles > 0 {
            level_dma_cycles + if ramp == u64::MAX { 0 } else { ramp }
        } else {
            0
        };

        // Bound 4: mutual exclusion — critical sections on one mutex sum.
        let mut mutex_bound = 0u64;
        for m in 0..TRACKED_MUTEXES {
            let acquires: u64 = segs.iter().map(|s| s.mutex_acquires[m]).sum();
            let held: u64 = segs.iter().map(|s| s.mutex_held_instrs[m]).sum();
            if acquires > 0 {
                mutex_bound = mutex_bound.max((2 * acquires + held) * p);
            }
        }

        // Bound 5: staggered release — the serialized engine completes each
        // tasklet's last DMA one after another, releasing post-DMA compute
        // tails over time; a fluid drain of (pre work, gate, post work)
        // through the shared issue slot captures the mixed
        // engine-then-compute regime the pure bounds miss.
        let release_bound = if level_dma_cycles > 0 {
            let base_ramp = if ramp == u64::MAX { 0 } else { ramp };
            let mut order: Vec<usize> =
                (0..segs.len()).filter(|&i| segs[i].dma_transfers > 0).collect();
            order.sort_by_key(|&i| (segs[i].pre_dma_instrs, i));
            let mut threads = Vec::with_capacity(segs.len());
            let mut prefix = base_ramp;
            for &i in &order {
                prefix += segs[i].dma_cycles;
                threads.push(FluidThread {
                    pre: segs[i].pre_dma_instrs as f64,
                    post: (segs[i].instructions - segs[i].instrs_at_last_dma) as f64,
                    gate: if cfg.non_blocking_dma { 0.0 } else { prefix as f64 },
                });
            }
            for s in segs.iter().filter(|s| s.dma_transfers == 0 && !s.is_empty()) {
                threads.push(FluidThread { pre: s.instructions as f64, post: 0.0, gate: 0.0 });
            }
            fluid_drain(threads, p as f64) as u64
        } else {
            0
        };

        // Interference: the bounds above are each exact when one resource
        // dominates, but with *blocking* DMA the compute side (issue slot,
        // serial span, mutex chains) and the memory side (engine, staggered
        // release) phase-lock — barrier-aligned waves and mutex convoys
        // make every tasklet block on the engine at once, so the two sides
        // partially serialize instead of overlapping. The harmonic term
        // `min² / 2·max` models that loss: it approaches half the smaller
        // side when the resources are balanced (measured overlap loss is
        // ~50 % on balanced kernels) and vanishes quadratically as one
        // side dominates (a saturated engine hides compute perfectly, and
        // vice versa). Only *interleaved* compute — instructions issued
        // between a tasklet's first and last DMA — can phase-lock with the
        // engine, so the term is scaled by the interleaved fraction of the
        // level's instructions: a lone prefetch followed by a long compute
        // tail (or a pure post-processing tail after the final transfer)
        // overlaps the engine drain perfectly and contributes no loss,
        // while a tight load/compute loop keeps the full harmonic penalty.
        // The sum stays monotone in both sides and additive across
        // barrier segments.
        let compute_side = issue_bound.max(serial_bound).max(mutex_bound);
        let memory_side = engine_bound.max(release_bound);
        let level_transfers: u64 = segs.iter().map(|s| s.dma_transfers).sum();
        let interleaved_instrs: u64 = segs
            .iter()
            .filter(|s| s.dma_transfers > 0)
            .map(|s| s.instrs_at_last_dma.saturating_sub(s.pre_dma_instrs))
            .sum();
        let interference = if cfg.non_blocking_dma || level_transfers == 0 {
            0
        } else {
            let lo = compute_side.min(memory_side) as u128;
            let hi = compute_side.max(memory_side) as u128;
            if hi == 0 {
                0
            } else {
                let base = ((lo * lo / (2 * hi)) as u64).min(lo as u64);
                if total_instrs == 0 {
                    base
                } else {
                    ((base as u128 * interleaved_instrs.min(total_instrs) as u128
                        / total_instrs as u128) as u64)
                        .min(base)
                }
            }
        };
        if std::env::var_os("ALPHA_PIM_ANALYTIC_DEBUG").is_some() {
            eprintln!(
                "analytic-debug level={level} live={live} instrs={total_instrs} \
                 dma={level_dma_cycles} issue={issue_bound} serial={serial_bound} \
                 engine={engine_bound} mutex={mutex_bound} release={release_bound} \
                 interference={interference}"
            );
        }
        body_cycles += compute_side.max(memory_side) + interference;
    }

    let total = if body_cycles == 0 { 0 } else { body_cycles + cfg.pipeline_depth as u64 };
    synthesize_profile(stats, &totals, total, cfg)
}

/// Builds the [`DpuProfile`] counter partition around a predicted makespan,
/// preserving the replayer's zero-remainder invariants and exact event
/// counts.
fn synthesize_profile(
    stats: &[TaskletStats],
    totals: &[TaskletTotals],
    total: u64,
    cfg: &PipelineConfig,
) -> DpuProfile {
    let n_tasklets = stats.len() as u64;
    let startup = cfg.dma_startup_cycles as u64;
    let p = cfg.revolver_period.max(1) as u64;
    let depth = cfg.pipeline_depth as u64;
    let engine_total: u64 = totals.iter().map(|t| t.dma_cycles).sum();

    let mut mix = InstrMix::new();
    for s in stats {
        mix.merge(&s.instr_mix());
    }
    let mut counters = CounterSet::new();
    let mut tasklets = Vec::with_capacity(stats.len());
    let mut issued = 0u64;
    let mut dma_wait_sum = 0u64;
    let mut rf_sum = 0u64;
    let mut active_estimate = 0.0f64;
    for t in totals {
        let mut c = CounterSet::new();
        let issue = t.instructions.min(total);
        let dma_wait = t.dma_cycles.saturating_sub(t.dma_transfers).min(total - issue);
        let rf = t.rf_cycles.min(total - issue - dma_wait);
        let mut remaining = total - issue - dma_wait - rf;
        let queue = if t.dma_transfers > 0 {
            engine_total.saturating_sub(t.dma_cycles).min(remaining)
        } else {
            0
        };
        remaining -= queue;
        let tail = depth.min(remaining);
        remaining -= tail;
        let revolver =
            (t.instructions.saturating_sub(t.dma_transfers) * (p - 1)).min(remaining);
        remaining -= revolver;
        let dma_startup = (t.dma_transfers * startup).min(dma_wait);
        c.set(CounterId::TaskletIssue, issue);
        c.set(CounterId::TaskletDmaStartup, dma_startup);
        c.set(CounterId::TaskletDmaTransfer, dma_wait - dma_startup);
        c.set(CounterId::TaskletRf, rf);
        c.set(CounterId::TaskletDmaQueue, queue);
        c.set(CounterId::TaskletRevolver, revolver);
        c.set(CounterId::TaskletTail, tail);
        c.set(CounterId::TaskletBarrier, remaining);
        issued += issue;
        dma_wait_sum += dma_wait;
        rf_sum += rf;
        active_estimate += if total == 0 {
            0.0
        } else {
            ((issue * p).min(total)) as f64 / total as f64
        };
        tasklets.push(c);
    }

    // Slot-level partition: issue, then memory (engine-busy idle), then rf,
    // then the revolver remainder.
    let active = issued.min(total);
    let slot_rem = total - active;
    let memory = dma_wait_sum.min(slot_rem);
    let rf = rf_sum.min(slot_rem - memory);
    let revolver = slot_rem - memory - rf;
    counters.set(CounterId::SlotIssue, active);
    counters.set(CounterId::SlotMemory, memory);
    counters.set(CounterId::SlotRf, rf);
    counters.set(CounterId::SlotRevolver, revolver);
    counters.set(CounterId::DpuCycles, total);
    counters.set(CounterId::TaskletBudget, n_tasklets * total);
    for (id, c) in [
        (CounterId::DmaTransfers, totals.iter().map(|t| t.dma_transfers).sum::<u64>()),
        (CounterId::DmaBytes, totals.iter().map(|t| t.dma_bytes).sum::<u64>()),
        (CounterId::MutexAcquires, totals.iter().map(|t| t.mutex_acquires).sum::<u64>()),
        (CounterId::BarrierCrossings, totals.iter().map(|t| t.barriers).sum::<u64>()),
    ] {
        counters.set(id, c);
    }
    for t in &tasklets {
        for id in CounterId::TASKLET_CYCLES {
            counters.add(id, t.get(id));
        }
    }

    DpuProfile {
        report: DpuReport {
            total_cycles: total,
            issued_instructions: issued,
            active_cycles: active,
            idle_memory_cycles: memory,
            idle_revolver_cycles: revolver,
            idle_rf_cycles: rf,
            instr_mix: mix,
            avg_active_threads: if total == 0 {
                0.0
            } else {
                active_estimate.clamp(1.0, n_tasklets as f64)
            },
            spin_retries: 0,
        },
        counters,
        tasklets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate_dpu_profiled;
    use crate::trace::TaskletTrace;

    fn cfg() -> PipelineConfig {
        PipelineConfig::default()
    }

    /// Records the same workload into both recorder kinds.
    fn record_both(work: impl Fn(&mut dyn Record)) -> (TaskletTrace, TaskletStats) {
        let mut trace = TaskletTrace::new();
        let mut stats = TaskletStats::new(&cfg());
        work(&mut trace);
        work(&mut stats);
        (trace, stats)
    }

    fn mixed_workload(r: &mut dyn Record) {
        r.compute(InstrClass::Arith, 24);
        r.compute(InstrClass::Control, 12);
        r.dma_stream(5000, 1024, 3);
        r.mutex_lock(3);
        r.compute(InstrClass::LoadStore, 2);
        r.mutex_unlock(3);
        r.dma(8);
        r.barrier();
        r.compute(InstrClass::Arith, 7);
        r.barrier();
    }

    #[test]
    fn stats_match_trace_on_exact_quantities() {
        let (trace, stats) = record_both(mixed_workload);
        assert_eq!(stats.instructions(), trace.instructions());
        assert_eq!(stats.dma_bytes(), trace.dma_bytes());
        assert_eq!(stats.instr_mix(), trace.instr_mix());
    }

    #[test]
    fn dma_stream_closed_form_matches_chunk_loop() {
        let (trace, stats) = record_both(|r| r.dma_stream(100_000, 1024, 2));
        assert_eq!(stats.instructions(), trace.instructions());
        assert_eq!(stats.dma_bytes(), trace.dma_bytes());
        // Per-transfer cycle sum matches the replayer's per-event costing.
        let c = cfg();
        let trace_cycles: u64 = trace
            .events()
            .iter()
            .filter_map(|e| {
                if let crate::trace::TraceEvent::Dma { bytes } = e {
                    Some(c.dma_cycles(*bytes))
                } else {
                    None
                }
            })
            .sum();
        let stats_cycles: u64 = stats.segments().iter().map(|s| s.dma_cycles).sum();
        assert_eq!(stats_cycles, trace_cycles);
    }

    #[test]
    fn empty_stats_predict_zero() {
        let profile = predict_dpu(&[], &cfg());
        assert_eq!(profile.report.total_cycles, 0);
        let stats = vec![TaskletStats::new(&cfg()); 4];
        let profile = predict_dpu(&stats, &cfg());
        assert_eq!(profile.report.total_cycles, 0);
        assert!(profile.counters.is_empty());
    }

    #[test]
    fn solo_compute_prediction_matches_des_exactly_without_hazards() {
        // Control instructions read no registers, so the DES outcome is
        // deterministic: (n-1)·P + 1 issue + pipeline depth.
        let mut stats = TaskletStats::new(&cfg());
        Record::compute(&mut stats, InstrClass::Control, 100);
        let profile = predict_dpu(&[stats], &cfg());
        let mut trace = TaskletTrace::new();
        trace.compute(InstrClass::Control, 100);
        let des = simulate_dpu_profiled(&[trace], &cfg());
        assert_eq!(profile.report.total_cycles, des.report.total_cycles);
    }

    #[test]
    fn predicted_counters_keep_zero_remainder_invariants() {
        let mut stats = Vec::new();
        for i in 0..8u32 {
            let mut s = TaskletStats::new(&cfg());
            let r: &mut dyn Record = &mut s;
            r.compute(InstrClass::Arith, 40 + i * 11);
            r.dma(256);
            r.mutex_lock(2);
            r.compute(InstrClass::LoadStore, 3);
            r.mutex_unlock(2);
            r.barrier();
            stats.push(s);
        }
        let profile = predict_dpu(&stats, &cfg());
        let total = profile.report.total_cycles;
        let c = &profile.counters;
        assert_eq!(c.sum(&CounterId::SLOT_CYCLES), c.get(CounterId::DpuCycles));
        assert_eq!(c.get(CounterId::DpuCycles), total);
        assert_eq!(c.sum(&CounterId::TASKLET_CYCLES), c.get(CounterId::TaskletBudget));
        assert_eq!(c.get(CounterId::TaskletBudget), 8 * total);
        for t in &profile.tasklets {
            assert_eq!(t.sum(&CounterId::TASKLET_CYCLES), total);
        }
        assert_eq!(c.get(CounterId::DmaTransfers), 8);
        assert_eq!(c.get(CounterId::DmaBytes), 8 * 256);
        assert_eq!(c.get(CounterId::MutexAcquires), 8);
        assert_eq!(c.get(CounterId::BarrierCrossings), 8);
        assert_eq!(c.get(CounterId::SpinRetries), 0);
    }

    #[test]
    fn makespan_is_monotone_in_work_and_dma() {
        let base = |extra_instrs: u32, extra_dma: u32| {
            let mut stats = Vec::new();
            for _ in 0..4 {
                let mut s = TaskletStats::new(&cfg());
                let r: &mut dyn Record = &mut s;
                r.compute(InstrClass::Arith, 100 + extra_instrs);
                r.dma(512 + extra_dma);
                r.barrier();
                stats.push(s);
            }
            predict_dpu(&stats, &cfg()).report.total_cycles
        };
        let t0 = base(0, 0);
        assert!(base(500, 0) > t0, "more instructions must not be faster");
        assert!(base(0, 4096) > t0, "more DMA bytes must not be faster");
    }

    #[test]
    fn makespan_is_additive_over_barrier_segments() {
        let seg = |r: &mut dyn Record, n: u32, bytes: u32| {
            r.compute(InstrClass::Arith, n);
            r.dma(bytes);
            r.barrier();
        };
        let build = |both: bool| {
            (0..4)
                .map(|_| {
                    let mut s = TaskletStats::new(&cfg());
                    seg(&mut s, 120, 1024);
                    if both {
                        seg(&mut s, 37, 64);
                    }
                    s
                })
                .collect::<Vec<_>>()
        };
        let only_first: Vec<TaskletStats> = (0..4)
            .map(|_| {
                let mut s = TaskletStats::new(&cfg());
                seg(&mut s, 37, 64);
                s
            })
            .collect();
        let depth = cfg().pipeline_depth as u64;
        let a = predict_dpu(&build(false), &cfg()).report.total_cycles;
        let b = predict_dpu(&only_first, &cfg()).report.total_cycles;
        let ab = predict_dpu(&build(true), &cfg()).report.total_cycles;
        assert_eq!(ab, a + b - depth, "segments must compose additively");
    }

    #[test]
    fn prediction_tracks_des_on_representative_kernels() {
        // Regression guard at the sim level: the calibrated end-to-end
        // bound lives in the core crate's calibration suite; here we only
        // require the raw per-DPU prediction to stay in the right regime.
        type Workload = Box<dyn Fn(&mut dyn Record, u32)>;
        let workloads: Vec<(&str, Workload)> = vec![
            (
                "dma-bound",
                Box::new(|r, i| {
                    r.compute(InstrClass::Arith, 30);
                    for _ in 0..40 + i {
                        r.compute(InstrClass::Arith, 8);
                        r.dma(8);
                    }
                    r.barrier();
                }),
            ),
            (
                "issue-bound",
                Box::new(|r, i| {
                    r.compute(InstrClass::Control, 24);
                    r.dma(1024);
                    r.compute(InstrClass::Arith, 900 + i * 13);
                    r.barrier();
                }),
            ),
            (
                "streaming",
                Box::new(|r, i| {
                    r.compute(InstrClass::Control, 36);
                    r.dma_stream(40_000 + i as u64 * 512, 1024, 3);
                    r.compute(InstrClass::LoadStore, 200);
                    r.barrier();
                }),
            ),
        ];
        for (name, w) in &workloads {
            let mut traces = Vec::new();
            let mut stats = Vec::new();
            for i in 0..16u32 {
                let mut t = TaskletTrace::new();
                let mut s = TaskletStats::new(&cfg());
                w(&mut t, i);
                w(&mut s, i);
                traces.push(t);
                stats.push(s);
            }
            let des = simulate_dpu_profiled(&traces, &cfg()).report.total_cycles as f64;
            let pred = predict_dpu(&stats, &cfg()).report.total_cycles as f64;
            let err = (pred - des).abs() / des;
            assert!(err < 0.15, "{name}: pred {pred} vs des {des} ({:.1}% off)", err * 100.0);
        }
    }
}

//! Deterministic, seed-driven fault injection for the simulated machine.
//!
//! Real UPMEM deployments lose ranks, hit MRAM ECC events, and suffer
//! straggler DPUs — rank-level variability the characterization literature
//! flags as first-order. This module decides *what goes wrong*: each DPU's
//! fate and each transfer batch's timeout are pure SplitMix64 hashes of
//! `(plan seed, site id, fault kind)`, so the same [`FaultPlan`] reproduces
//! the same faults regardless of replay order or host thread count —
//! preserving the PR 1 bit-identity guarantee under chaos.
//!
//! What the host *does about it* — bounded retry with exponential backoff,
//! partition redistribution, graceful degradation — lives in
//! [`crate::resilience`]; the cycle/event accounting flows through the
//! [`crate::counters`] registry so the PR 2 zero-remainder partitions
//! extend to faulty runs.

use crate::config::{FaultPlan, PimConfig, ResiliencePolicy};
use crate::counters::{CounterId, CounterSet};
use crate::pipeline::{mix64, straggler_extra_cycles};

/// Salt distinguishing the per-kind draw streams.
const SALT_LOSS: u64 = 0x10_55;
/// Salt for the host-crash superstep draw.
const SALT_CRASH: u64 = 0xC4_A5;
const SALT_FLIP: u64 = 0xF1_1B;
const SALT_STRAGGLER: u64 = 0x57_4A;
const SALT_TIMEOUT: u64 = 0x71_3E;
/// Salt for the secondary draw sizing ECC/timeout retry counts.
const SALT_RETRIES: u64 = 0x4E_77;
/// Salt for the silent output-corruption draw and its victim selection.
const SALT_SILENT: u64 = 0x51_1F;

/// What the plan decided about one DPU for this system. Verdicts are
/// persistent: the same DPU id always gets the same verdict under the same
/// plan (a dead rank stays dead across kernel launches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// No fault injected.
    Healthy,
    /// The DPU's whole pipeline runs `straggler_multiplier`× slow.
    Straggler,
    /// An MRAM bit flip surfaced as an ECC event on DMA; the host scrubs
    /// it with `retries` backoff-retry rounds and keeps the DPU's results.
    EccRetry {
        /// Retry rounds needed (1..=`max_retries`).
        retries: u32,
    },
    /// The DPU is gone (rank failure, or an ECC event with a zero retry
    /// budget).
    Lost {
        /// `true`: its row block was redistributed to a healthy DPU and
        /// the kernel's results are intact (completed late). `false`: no
        /// redistribution was possible — the partition is dropped and the
        /// kernel completes `Degraded`.
        redistributed: bool,
    },
    /// The DPU completed on time but its output values are silently
    /// corrupted: no ECC event, no timeout, no heartbeat loss — nothing
    /// the detected-fault machinery can see. Only an ABFT checksum guard
    /// at merge time (`alpha_pim::kernel::integrity`) can catch it, which
    /// is why [`FaultEngine::record_events`] deliberately records nothing
    /// for this verdict and its recovery cost is accounted under the
    /// `sdc.*` ledger instead of `fault.*`.
    SilentFlip,
}

impl FaultVerdict {
    /// Whether this verdict drops the DPU's functional contribution.
    pub fn is_dropped(self) -> bool {
        matches!(self, FaultVerdict::Lost { redistributed: false })
    }
}

/// The seeded fault oracle for one system: pure functions from site ids to
/// verdicts and recovery costs. Cheap to build (one O(`num_dpus`)
/// survivability scan) and to query (a few integer mixes per call).
#[derive(Debug, Clone)]
pub struct FaultEngine {
    plan: FaultPlan,
    /// Logical→physical DPU id map on a quarantine-shrunk machine (empty =
    /// identity). Draws key on *physical* ids so a surviving DPU keeps its
    /// seeded fate when neighbours are quarantined out of the plan.
    remap: Vec<u32>,
    /// Whether dead DPUs can be redistributed: the policy allows it and at
    /// least one DPU in `0..num_dpus` survives the loss draws.
    survivable: bool,
}

impl FaultEngine {
    /// Builds the oracle for a machine of `num_dpus` DPUs.
    pub fn new(plan: FaultPlan, num_dpus: u32) -> Self {
        let mut engine = FaultEngine { plan, remap: Vec::new(), survivable: false };
        engine.survivable = engine.plan.policy.redistribute
            && (0..num_dpus).any(|d| !engine.raw_loss(d));
        engine
    }

    /// Builds the oracle a config calls for, honouring its quarantine
    /// remap: `None` when the config carries no plan or an inert one (so
    /// callers skip fault bookkeeping entirely on healthy runs).
    pub fn from_config(cfg: &PimConfig) -> Option<Self> {
        let plan = cfg.faults.as_ref().filter(|plan| !plan.is_inert())?;
        let mut engine = FaultEngine {
            plan: plan.clone(),
            remap: cfg.dpu_remap.clone(),
            survivable: false,
        };
        engine.survivable = engine.plan.policy.redistribute
            && (0..cfg.num_dpus).any(|d| !engine.raw_loss(engine.physical(d)));
        Some(engine)
    }

    /// The physical DPU id behind logical slot `dpu` (identity without a
    /// quarantine remap).
    pub fn physical(&self, dpu: u32) -> u32 {
        self.remap.get(dpu as usize).copied().unwrap_or(dpu)
    }

    /// The plan this oracle draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The active resilience policy.
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.plan.policy
    }

    /// Whether lost DPUs are redistributed rather than dropped.
    pub fn survivable(&self) -> bool {
        self.survivable
    }

    /// A uniform draw in `[0, 1)`, pure in `(seed, salt, id)`.
    fn unit(&self, salt: u64, id: u64) -> f64 {
        let h = mix64(self.plan.seed ^ mix64(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ id));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether the plan kills the DPU at *physical* id `dpu` outright,
    /// before policy escalation.
    fn raw_loss(&self, dpu: u32) -> bool {
        let d = dpu as u64;
        if self.unit(SALT_LOSS, d) < self.plan.dpu_loss_rate {
            return true;
        }
        // A zero retry budget turns every ECC event into a loss.
        self.plan.policy.max_retries == 0
            && self.unit(SALT_FLIP, d) < self.plan.bitflip_rate
    }

    /// This DPU's verdict under the plan (precedence: loss > bit flip >
    /// silent flip > straggler). `dpu` is a logical slot; the draw keys on
    /// its physical id so verdicts survive quarantine re-planning.
    pub fn verdict(&self, dpu: u32) -> FaultVerdict {
        let d = self.physical(dpu) as u64;
        if self.unit(SALT_LOSS, d) < self.plan.dpu_loss_rate {
            return FaultVerdict::Lost { redistributed: self.survivable };
        }
        if self.unit(SALT_FLIP, d) < self.plan.bitflip_rate {
            let budget = self.plan.policy.max_retries;
            if budget == 0 {
                return FaultVerdict::Lost { redistributed: self.survivable };
            }
            let retries = 1 + (mix64(self.plan.seed ^ mix64(SALT_RETRIES ^ d)) % budget as u64) as u32;
            return FaultVerdict::EccRetry { retries };
        }
        if self.unit(SALT_SILENT, d) < self.plan.silent_flip_rate {
            return FaultVerdict::SilentFlip;
        }
        if self.unit(SALT_STRAGGLER, d) < self.plan.straggler_rate {
            return FaultVerdict::Straggler;
        }
        FaultVerdict::Healthy
    }

    /// Whether logical slot `dpu` silently corrupts its output this run.
    pub fn silently_flipped(&self, dpu: u32) -> bool {
        self.verdict(dpu) == FaultVerdict::SilentFlip
    }

    /// The deterministic corruption shape for a silently flipped DPU: a
    /// `(victim_hint, bit_pattern)` pair of independent pure draws. Kernels
    /// reduce `victim_hint` over their partition's live output elements to
    /// pick which one to corrupt, and fold `bit_pattern` into its value.
    /// Pure in `(seed, physical id)`, so the corruption replays identically
    /// at any thread count and across quarantine re-plans.
    pub fn corruption_draw(&self, dpu: u32) -> (u64, u64) {
        let d = self.physical(dpu) as u64;
        let h = mix64(self.plan.seed ^ mix64(SALT_SILENT.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ d));
        let victim = mix64(h ^ 0xA5A5_A5A5_A5A5_A5A5);
        let pattern = mix64(victim.wrapping_add(0x9e37_79b9_7f4a_7c15));
        (victim, pattern)
    }

    /// Whether `dpu`'s partition is dropped (unsurvivable loss). Kernels
    /// consult this before applying a partition's functional result.
    pub fn dpu_is_dropped(&self, dpu: u32) -> bool {
        self.verdict(dpu).is_dropped()
    }

    /// Total backoff cycles of `retries` exponential rounds
    /// (`base, 2·base, 4·base, …`, shift-capped to stay finite and
    /// saturating at `u64::MAX` instead of overflowing).
    pub fn backoff_cycles(&self, retries: u32) -> u64 {
        saturating_backoff(self.plan.policy.backoff_base_cycles, retries)
    }

    /// Recovery cycles this verdict adds on top of a `base_cycles`
    /// makespan. The same formula applies to discrete-event and estimated
    /// makespans so sampled-fidelity calibration stays coherent.
    pub fn penalty_cycles(&self, verdict: FaultVerdict, base_cycles: u64) -> u64 {
        match verdict {
            FaultVerdict::Healthy => 0,
            FaultVerdict::Straggler => {
                straggler_extra_cycles(base_cycles, self.plan.straggler_multiplier)
            }
            FaultVerdict::EccRetry { retries } => self.backoff_cycles(retries),
            // Detected at completion, then the row block re-runs on a
            // healthy stand-in after one backoff window.
            FaultVerdict::Lost { redistributed: true } => {
                base_cycles + self.plan.policy.backoff_base_cycles
            }
            FaultVerdict::Lost { redistributed: false } => 0,
            // Silent by definition: the pipeline finishes on schedule. Any
            // recompute cost is charged by the integrity guard that
            // actually detects the corruption, under `sdc.recompute_cycles`.
            FaultVerdict::SilentFlip => 0,
        }
    }

    /// Which fault-cycle bucket this verdict's penalty belongs to.
    pub fn penalty_bucket(&self, verdict: FaultVerdict) -> CounterId {
        match verdict {
            FaultVerdict::Straggler => CounterId::FaultStragglerCycles,
            _ => CounterId::FaultRetryCycles,
        }
    }

    /// Records the event-level accounting of one DPU verdict: injected ==
    /// detected, and every detected fault is either recovered or lost.
    /// `SilentFlip` records nothing here — by construction it raises no
    /// detectable event, so it must not perturb the `fault.*` ledgers; the
    /// `sdc.*` ledger is kept by the merge-time integrity guard instead.
    pub fn record_events(&self, verdict: FaultVerdict, events: &mut CounterSet) {
        if matches!(verdict, FaultVerdict::Healthy | FaultVerdict::SilentFlip) {
            return;
        }
        events.add(CounterId::FaultsInjected, 1);
        events.add(CounterId::FaultsDetected, 1);
        match verdict {
            FaultVerdict::Healthy | FaultVerdict::SilentFlip => {
                unreachable!("filtered above")
            }
            FaultVerdict::Straggler => events.add(CounterId::FaultsRecovered, 1),
            FaultVerdict::EccRetry { retries } => {
                events.add(CounterId::FaultsRecovered, 1);
                events.add(CounterId::FaultRetries, retries as u64);
            }
            FaultVerdict::Lost { redistributed: true } => {
                events.add(CounterId::FaultsRecovered, 1);
                events.add(CounterId::FaultRedistributions, 1);
            }
            FaultVerdict::Lost { redistributed: false } => {
                events.add(CounterId::FaultsLost, 1);
            }
        }
    }

    /// Timeout draw for one CPU↔DPU transfer batch, identified by its
    /// sequence number within the launch and its payload size. Returns the
    /// retransmit rounds needed (0 = the batch went through cleanly).
    pub fn transfer_timeout_retries(&self, batch_seq: u64, bytes: u64) -> u32 {
        let id = mix64(batch_seq.wrapping_mul(0x94d0_49bb_1331_11eb) ^ bytes);
        if self.unit(SALT_TIMEOUT, id) >= self.plan.timeout_rate {
            return 0;
        }
        let budget = self.plan.policy.max_retries.max(1);
        1 + (mix64(self.plan.seed ^ mix64(SALT_RETRIES ^ id)) % budget as u64) as u32
    }
}

/// Total cycles of `retries` exponential backoff rounds in closed form:
/// round `i` waits `base << min(i, 16)`, so the sum is
/// `base · (2^min(r,17) − 1 + max(r − 17, 0) · 2^16)`. Evaluated in
/// `u128` and clamped, so no combination of `base`/`retries` can
/// overflow `u64` — extreme inputs saturate at `u64::MAX`.
pub fn saturating_backoff(base: u64, retries: u32) -> u64 {
    let r = retries as u128;
    let factor = ((1u128 << r.min(17)) - 1) + r.saturating_sub(17) * (1u128 << 16);
    u64::try_from(base as u128 * factor).unwrap_or(u64::MAX)
}

/// A deterministic host-crash plan: the host process dies at the checkpoint
/// boundary right after a given superstep of a serving batch completes.
/// Unlike the DPU-level verdicts above, a host crash kills the *orchestrator*
/// — all in-flight stepper state would be lost without the checkpoint layer
/// (`alpha_pim::recover`). The crash superstep is either pinned explicitly
/// or drawn as a pure SplitMix64 hash of the seed, so crash sweeps replay
/// identically at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCrashPlan {
    /// Zero-based superstep index after which the host dies. The crash
    /// happens *after* the superstep's checkpoint is durable, modeling a
    /// write-ahead discipline: state reached before death is recoverable.
    pub crash_after_superstep: u64,
}

impl HostCrashPlan {
    /// A plan that crashes right after superstep `k` completes.
    pub fn at(superstep: u64) -> Self {
        HostCrashPlan { crash_after_superstep: superstep }
    }

    /// A seeded plan: draws the crash superstep uniformly from
    /// `0..max_supersteps` (clamped to at least one boundary) as a pure
    /// hash of `seed`, so the same seed always crashes at the same place.
    pub fn seeded(seed: u64, max_supersteps: u64) -> Self {
        let k = mix64(seed ^ mix64(SALT_CRASH.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            % max_supersteps.max(1);
        HostCrashPlan { crash_after_superstep: k }
    }

    /// Whether the host dies at the boundary after `superstep`.
    pub fn fires_after(self, superstep: u64) -> bool {
        superstep == self.crash_after_superstep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64) -> FaultPlan {
        FaultPlan::uniform(0xC0FFEE, rate)
    }

    #[test]
    fn inert_plan_never_fires() {
        let e = FaultEngine::new(plan(0.0), 64);
        for d in 0..64 {
            assert_eq!(e.verdict(d), FaultVerdict::Healthy);
            assert!(!e.dpu_is_dropped(d));
        }
        assert_eq!(e.transfer_timeout_retries(0, 1024), 0);
    }

    #[test]
    fn saturated_plan_kills_everything() {
        let e = FaultEngine::new(plan(1.0), 16);
        // Loss rate 1.0 leaves no healthy DPU, so nothing is survivable.
        assert!(!e.survivable());
        for d in 0..16 {
            assert_eq!(e.verdict(d), FaultVerdict::Lost { redistributed: false });
        }
    }

    #[test]
    fn verdicts_are_pure_and_persistent() {
        let a = FaultEngine::new(plan(0.3), 256);
        let b = FaultEngine::new(plan(0.3), 256);
        for d in (0..256).rev() {
            assert_eq!(a.verdict(d), b.verdict(d), "dpu {d}");
        }
    }

    #[test]
    fn rates_shift_the_fault_mix() {
        let e = FaultEngine::new(plan(0.25), 512);
        let mut lost = 0;
        let mut hit = 0;
        for d in 0..512 {
            match e.verdict(d) {
                FaultVerdict::Healthy => {}
                FaultVerdict::Lost { .. } => {
                    lost += 1;
                    hit += 1;
                }
                _ => hit += 1,
            }
        }
        // 25% loss + 25% flip + 25% straggler of the rest: well over half
        // the DPUs should be hit, and a quarter-ish lost.
        assert!(hit > 150, "hit {hit}");
        assert!((64..192).contains(&lost), "lost {lost}");
    }

    #[test]
    fn zero_retry_budget_escalates_ecc_to_loss() {
        let mut p = plan(0.0);
        p.bitflip_rate = 1.0;
        p.policy.max_retries = 0;
        let e = FaultEngine::new(p, 8);
        assert!(matches!(e.verdict(0), FaultVerdict::Lost { .. }));
    }

    #[test]
    fn redistribution_requires_policy_and_a_healthy_dpu() {
        let mut p = plan(0.0);
        p.dpu_loss_rate = 0.5;
        let with = FaultEngine::new(p.clone(), 64);
        assert!(with.survivable());
        p.policy.redistribute = false;
        let without = FaultEngine::new(p, 64);
        assert!(!without.survivable());
    }

    #[test]
    fn backoff_is_exponential_and_penalties_scale() {
        let e = FaultEngine::new(plan(0.0), 4);
        let base = e.plan().policy.backoff_base_cycles;
        assert_eq!(e.backoff_cycles(1), base);
        assert_eq!(e.backoff_cycles(3), base + 2 * base + 4 * base);
        assert_eq!(e.penalty_cycles(FaultVerdict::Healthy, 1000), 0);
        assert_eq!(e.penalty_cycles(FaultVerdict::Straggler, 1000), 500);
        assert_eq!(
            e.penalty_cycles(FaultVerdict::Lost { redistributed: true }, 1000),
            1000 + base,
        );
        assert_eq!(e.penalty_cycles(FaultVerdict::Lost { redistributed: false }, 1000), 0);
    }

    #[test]
    fn event_accounting_balances() {
        let e = FaultEngine::new(plan(0.0), 4);
        let mut c = CounterSet::new();
        for v in [
            FaultVerdict::Healthy,
            FaultVerdict::Straggler,
            FaultVerdict::EccRetry { retries: 2 },
            FaultVerdict::Lost { redistributed: true },
            FaultVerdict::Lost { redistributed: false },
        ] {
            e.record_events(v, &mut c);
        }
        assert_eq!(c.get(CounterId::FaultsInjected), 4);
        assert_eq!(c.get(CounterId::FaultsDetected), 4);
        assert_eq!(
            c.get(CounterId::FaultsRecovered) + c.get(CounterId::FaultsLost),
            c.get(CounterId::FaultsDetected),
        );
        assert_eq!(c.get(CounterId::FaultRetries), 2);
        assert_eq!(c.get(CounterId::FaultRedistributions), 1);
    }

    #[test]
    fn silent_flips_fire_without_any_detectable_event() {
        let p = FaultPlan::silent(0xC0FFEE, 1.0);
        let e = FaultEngine::new(p, 16);
        let mut c = CounterSet::new();
        for d in 0..16 {
            assert_eq!(e.verdict(d), FaultVerdict::SilentFlip, "dpu {d}");
            assert!(e.silently_flipped(d));
            assert!(!e.dpu_is_dropped(d));
            assert_eq!(e.penalty_cycles(FaultVerdict::SilentFlip, 1000), 0);
            e.record_events(e.verdict(d), &mut c);
        }
        // Nothing detectable: the fault.* ledgers stay untouched.
        assert_eq!(c.get(CounterId::FaultsInjected), 0);
        assert_eq!(c.get(CounterId::FaultsDetected), 0);
        // Corruption draws are pure and per-DPU distinct.
        assert_eq!(e.corruption_draw(3), e.corruption_draw(3));
        assert_ne!(e.corruption_draw(3), e.corruption_draw(4));
    }

    #[test]
    fn silent_flip_yields_precedence_to_detected_faults() {
        let mut p = FaultPlan::silent(7, 1.0);
        p.dpu_loss_rate = 1.0;
        let e = FaultEngine::new(p, 4);
        assert!(matches!(e.verdict(0), FaultVerdict::Lost { .. }));
        let mut q = FaultPlan::silent(7, 1.0);
        q.bitflip_rate = 1.0;
        let e = FaultEngine::new(q, 4);
        assert!(matches!(e.verdict(0), FaultVerdict::EccRetry { .. }));
        // ...but wins over straggler.
        let mut r = FaultPlan::silent(7, 1.0);
        r.straggler_rate = 1.0;
        let e = FaultEngine::new(r, 4);
        assert_eq!(e.verdict(0), FaultVerdict::SilentFlip);
    }

    #[test]
    fn remapped_engine_keeps_physical_fates() {
        use crate::config::PimConfig;
        let mut plan = plan(0.0);
        plan.silent_flip_rate = 0.4;
        let mut cfg = PimConfig { num_dpus: 8, ..PimConfig::default() };
        cfg.faults = Some(plan);
        let full = FaultEngine::from_config(&cfg).expect("plan is live");
        // Quarantine physical DPUs 1 and 5: logical slots now map to the
        // surviving physical ids, whose verdicts must not move.
        let shrunk_cfg = cfg.excluding_dpus(&[1, 5]).expect("survivors remain");
        let shrunk = FaultEngine::from_config(&shrunk_cfg).expect("plan is live");
        let survivors: Vec<u32> = (0..8).filter(|d| *d != 1 && *d != 5).collect();
        for (logical, physical) in survivors.iter().enumerate() {
            assert_eq!(shrunk.physical(logical as u32), *physical);
            assert_eq!(
                shrunk.verdict(logical as u32),
                full.verdict(*physical),
                "physical {physical}",
            );
            assert_eq!(
                shrunk.corruption_draw(logical as u32),
                full.corruption_draw(*physical),
            );
        }
    }

    #[test]
    fn from_config_skips_missing_and_inert_plans() {
        use crate::config::PimConfig;
        let cfg = PimConfig::default();
        assert!(FaultEngine::from_config(&cfg).is_none());
        let mut inert = cfg.clone();
        inert.faults = Some(plan(0.0));
        assert!(FaultEngine::from_config(&inert).is_none());
        let mut live = cfg;
        live.faults = Some(plan(0.1));
        assert!(FaultEngine::from_config(&live).is_some());
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        // Closed form matches the checked reference wherever the reference
        // itself fits in u64.
        let reference = |base: u64, retries: u32| -> Option<u64> {
            let mut total = 0u64;
            for i in 0..retries {
                total = total.checked_add(base.checked_shl(i.min(16))?)?;
            }
            Some(total)
        };
        let mut seed = 0x5EED_u64;
        for _ in 0..256 {
            seed = mix64(seed);
            let base = seed % (1 << 40);
            let retries = (mix64(seed) % 64) as u32;
            if let Some(want) = reference(base, retries) {
                assert_eq!(saturating_backoff(base, retries), want, "base {base} retries {retries}");
            }
        }
        // Extremes saturate rather than panic or wrap.
        assert_eq!(saturating_backoff(u64::MAX, u32::MAX), u64::MAX);
        assert_eq!(saturating_backoff(u64::MAX, 2), u64::MAX);
        assert_eq!(saturating_backoff(1 << 63, 64), u64::MAX);
        assert_eq!(saturating_backoff(0, u32::MAX), 0);
        assert_eq!(saturating_backoff(u64::MAX, 0), 0);
        assert_eq!(saturating_backoff(u64::MAX, 1), u64::MAX);
    }

    #[test]
    fn host_crash_plans_are_pure_and_bounded() {
        assert!(HostCrashPlan::at(3).fires_after(3));
        assert!(!HostCrashPlan::at(3).fires_after(2));
        for seed in 0..64u64 {
            let a = HostCrashPlan::seeded(seed, 10);
            let b = HostCrashPlan::seeded(seed, 10);
            assert_eq!(a, b, "seed {seed}");
            assert!(a.crash_after_superstep < 10, "seed {seed}");
        }
        // Zero supersteps clamps to one boundary rather than dividing by 0.
        assert_eq!(HostCrashPlan::seeded(1, 0).crash_after_superstep, 0);
        // Different seeds actually spread across the range.
        let distinct: std::collections::HashSet<u64> =
            (0..32).map(|s| HostCrashPlan::seeded(s, 8).crash_after_superstep).collect();
        assert!(distinct.len() > 3, "draws collapsed: {distinct:?}");
    }

    #[test]
    fn timeout_draws_depend_on_batch_and_size() {
        let mut p = plan(0.0);
        p.timeout_rate = 0.5;
        let e = FaultEngine::new(p, 4);
        let fired: usize = (0..64).filter(|&s| e.transfer_timeout_retries(s, 4096) > 0).count();
        assert!((16..48).contains(&fired), "fired {fired}");
        // Pure: same inputs, same answer.
        assert_eq!(e.transfer_timeout_retries(7, 512), e.transfer_timeout_retries(7, 512));
    }
}

//! The observability counter registry: every quantity the simulator can
//! attribute a cycle (or an event, or a byte) to, with stable indices and
//! labels so reports, exporters, and tests all speak the same taxonomy.
//!
//! Counters come in four groups (see `DESIGN.md` §9 for the mapping to the
//! paper's Fig 2/Fig 9 stall categories):
//!
//! * **Slot-level** (`slot.*`, `dpu.cycles`) — one entry per issue slot of
//!   one DPU; `slot.issue + slot.memory + slot.revolver + slot.rf ==
//!   dpu.cycles` by construction.
//! * **Tasklet-level** (`tasklet.*`) — exact wall-clock attribution per
//!   tasklet: every cycle of every tasklet's lifetime is assigned to
//!   exactly one wait (or issue, or tail) category, so the tasklet
//!   counters sum to `tasklet.budget = tasklets × dpu.cycles`.
//! * **Event** (`event.*`) — discrete occurrences: DMA transfers and their
//!   bytes, mutex acquisitions, contended-mutex retries, barrier crossings.
//! * **Host/transfer** (`xfer.*`, `host.*`) — bus bytes and host-side work
//!   recorded by the transfer and merge models around the kernel launch.
//! * **Faults** (`slot.fault`, `tasklet.fault`, `fault.*`) — the
//!   resilience layer: injected/detected/handled fault events and the
//!   recovery cycles they add, extending both cycle partitions so the
//!   zero-remainder invariants keep holding under any
//!   [`crate::config::FaultPlan`].
//! * **Serving** (`serve.*`) — amortization bookkeeping of the batched
//!   multi-query engine: partition-cache hits/misses and the bus bytes and
//!   transfer batches the shared per-superstep broadcast saved relative to
//!   running each query alone. Event-like: outside both cycle partitions.
//! * **Checkpointing** (`ckpt.*`, `serve.shed`) — crash-recovery
//!   bookkeeping of the serving engine: snapshots written, snapshot bytes,
//!   restores performed, and deadline-shed queries. Event-like: outside
//!   both cycle partitions, so the zero-remainder invariants are
//!   unaffected by any checkpoint policy.
//! * **Service** (`queue.*`, `tenant.*`, `serve.cache_evictions`,
//!   `serve.evicted_bytes`) — the multi-tenant sustained-load front-end:
//!   the admission ledger (`queue.arrivals == queue.admitted +
//!   queue.rejected`), the outcome ledger (`queue.admitted ==
//!   queue.served + queue.shed_wait + queue.shed_deadline`), cumulative
//!   queue-wait cycles, active tenants, and byte-budgeted
//!   partition-cache evictions. Event-like: outside both cycle
//!   partitions.
//! * **Delta** (`delta.*`) — the dynamic-graph mutation layer: epoch
//!   admissions, the edge ledger (`delta.edges_inserted +
//!   delta.edges_deleted == delta.edges_applied`; applied + redundant ==
//!   requested), the partition-dirtiness ledger (`delta.partitions_dirty +
//!   delta.partitions_clean == delta.partitions_total`), and the
//!   incremental-recompute ledger (`delta.frontier_seeded +
//!   delta.frontier_saved == delta.frontier_full`, counting source
//!   vertices an incremental recompute seeded versus the full-frontier
//!   size a from-scratch rerun would have touched). Event-like: outside
//!   both cycle partitions.
//! * **Integrity** (`sdc.*`, `quarantine.*`) — the silent-data-corruption
//!   layer: ABFT merge-time verification of partition outputs and the
//!   per-DPU health quarantine. Two ledgers: `sdc.detected + sdc.escaped
//!   == sdc.injected` (with verification enabled `escaped == 0`), and
//!   `sdc.detected == sdc.corrected` (every detected corruption is
//!   recomputed on a healthy DPU). The quarantine scoreboard partitions
//!   the machine: `quarantine.dpus_active + quarantine.dpus_quarantined
//!   == quarantine.dpus_total`. Event-like: outside both cycle
//!   partitions (`sdc.recompute_cycles` is informational host-side time,
//!   not part of the slot/tasklet budgets).

/// Number of distinct counters in the registry.
pub const NUM_COUNTERS: usize = 81;

/// Identifier of one observability counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CounterId {
    /// Issue slots in which an instruction dispatched.
    SlotIssue,
    /// Idle issue slots while some tasklet waited on DMA.
    SlotMemory,
    /// Idle issue slots attributed to the revolver dispatch constraint.
    SlotRevolver,
    /// Idle issue slots attributed to even/odd register-bank hazards.
    SlotRf,
    /// The DPU makespan in cycles (slot counters sum to this).
    DpuCycles,
    /// Tasklet cycles spent issuing an instruction.
    TaskletIssue,
    /// Tasklet cycles ready to issue but losing the dispatch slot to a
    /// sibling tasklet (dispatch-slot contention).
    TaskletDispatch,
    /// Tasklet cycles waiting out the ≥11-cycle revolver spacing.
    TaskletRevolver,
    /// Tasklet cycles delayed by an even/odd register-bank hazard.
    TaskletRf,
    /// Tasklet cycles queued behind the serialized per-DPU DMA engine.
    TaskletDmaQueue,
    /// Tasklet cycles inside a DMA transfer's fixed startup window.
    TaskletDmaStartup,
    /// Tasklet cycles inside a DMA transfer's per-byte streaming phase.
    TaskletDmaTransfer,
    /// Tasklet cycles backing off after a contended mutex acquire.
    TaskletMutex,
    /// Tasklet cycles parked at the all-tasklet barrier.
    TaskletBarrier,
    /// Tasklet cycles after its trace ended (peer skew + pipeline drain).
    TaskletTail,
    /// `tasklets × dpu.cycles` — the budget the tasklet counters sum to.
    TaskletBudget,
    /// Extra `Sync` instructions issued retrying contended mutexes.
    SpinRetries,
    /// MRAM↔WRAM DMA transfers launched.
    DmaTransfers,
    /// Bytes moved by MRAM↔WRAM DMA transfers.
    DmaBytes,
    /// Successful (uncontended or eventually-won) mutex acquisitions.
    MutexAcquires,
    /// Tasklet arrivals at the all-tasklet barrier.
    BarrierCrossings,
    /// Bus bytes of CPU→DPU scatter batches (padded to the largest payload).
    XferScatterBytes,
    /// Bus bytes of CPU→DPU broadcasts (`payload × num_dpus`; no multicast).
    XferBroadcastBytes,
    /// Bus bytes of DPU→CPU gather batches.
    XferGatherBytes,
    /// Parallel-transfer batches issued by the host.
    XferBatches,
    /// Bytes streamed by the host-side partial-result merge.
    HostMergeBytes,
    /// Bytes streamed by host-side convergence/frontier scans.
    HostScanBytes,
    /// Host-side reductions (merges + scans) performed.
    HostReductions,
    /// Extra issue slots a detailed DPU spends on fault recovery
    /// (straggler slowdown, ECC retry backoff, redistribution re-runs);
    /// extends [`CounterId::SLOT_CYCLES`] so the slot partition still sums
    /// to [`CounterId::DpuCycles`] under faults.
    SlotFault,
    /// Per-tasklet cycles attributed to fault recovery; extends
    /// [`CounterId::TASKLET_CYCLES`] so the tasklet partition still sums
    /// to [`CounterId::TaskletBudget`] under faults.
    TaskletFault,
    /// Faults the plan injected (all kinds, all DPUs + transfers).
    FaultsInjected,
    /// Faults the host-side resilience layer detected. Equal to
    /// [`CounterId::FaultsInjected`] by construction (every injected fault
    /// surfaces as a detectable event).
    FaultsDetected,
    /// Faults recovered (retried, redistributed, or absorbed) without
    /// losing results.
    FaultsRecovered,
    /// DPUs lost with no redistribution possible: their partitions were
    /// dropped and the kernel completed `Degraded`.
    FaultsLost,
    /// Bounded-retry attempts the resilience policy issued (ECC scrubs +
    /// transfer retransmits).
    FaultRetries,
    /// Dead-DPU row blocks redistributed to healthy DPUs.
    FaultRedistributions,
    /// Recovery cycles attributed to straggler slowdown (detailed DPUs).
    FaultStragglerCycles,
    /// Recovery cycles attributed to retry backoff and redistribution
    /// re-runs (detailed DPUs). Together with
    /// [`CounterId::FaultStragglerCycles`] this partitions
    /// [`CounterId::SlotFault`] with zero remainder.
    FaultRetryCycles,
    /// CPU↔DPU transfer batches that timed out and were retransmitted.
    FaultTimeouts,
    /// Partitioned-matrix cache hits in the serving engine (queries that
    /// skipped re-partitioning and MRAM reload entirely).
    ServeCacheHits,
    /// Partitioned-matrix cache misses (partition + load paid once, then
    /// reused by every subsequent query on the same graph).
    ServeCacheMisses,
    /// Bus bytes the batched per-superstep broadcast saved versus issuing
    /// each live query's input-vector load as its own full transfer.
    ServeBroadcastSavedBytes,
    /// Host→DPU transfer batches the serving engine elided by packing the
    /// live queries' frontiers into one batch per superstep.
    ServeBatchesSaved,
    /// Checkpoint snapshots written at superstep boundaries.
    CkptSnapshots,
    /// Bytes of serialized checkpoint state written (snapshots + journal).
    CkptBytes,
    /// Batches resumed from a checkpoint instead of starting cold.
    CkptRestores,
    /// Queries shed because their cumulative kernel cycles exceeded the
    /// configured per-query deadline budget (finished `degraded`).
    ServeShed,
    /// Queries submitted to the service front-end (admitted + rejected).
    QueueArrivals,
    /// Queries the admission controller accepted into the queue.
    QueueAdmitted,
    /// Queries the admission controller turned away at the door because
    /// the bounded queue was full (lowest-priority, latest-arrival first).
    QueueRejected,
    /// Admitted queries that were dispatched and finished with a full
    /// (non-degraded) result.
    QueueServed,
    /// Admitted queries whose deadline budget was already exhausted by
    /// queue wait before dispatch; shed without executing.
    QueueShedWait,
    /// Admitted queries dispatched with a reduced (queue-wait-debited)
    /// deadline that the executor then shed mid-run; together with
    /// [`CounterId::QueueServed`] and [`CounterId::QueueShedWait`] this
    /// partitions [`CounterId::QueueAdmitted`] with zero remainder.
    QueueShedDeadline,
    /// Total model-clock cycles admitted queries spent waiting in the
    /// queue between arrival and dispatch (or wait-shedding).
    QueueWaitCycles,
    /// Distinct tenants that submitted at least one query to the service.
    TenantsActive,
    /// Partition-cache entries evicted to stay under the byte budget (or
    /// the entry cap) of the serving engine.
    ServeCacheEvictions,
    /// Resident bytes released by those evictions.
    ServeEvictedBytes,
    /// Mutation epochs admitted by the delta layer (one per applied
    /// [`MutationBatch`], empty batches included).
    DeltaEpochs,
    /// Edge mutations requested across all admitted batches (inserts +
    /// deletes, effective or not).
    DeltaEdgesRequested,
    /// Edge mutations that changed the graph (the effective subset of
    /// [`CounterId::DeltaEdgesRequested`]).
    DeltaEdgesApplied,
    /// Effective edge insertions (new (row, col) pairs materialized).
    DeltaEdgesInserted,
    /// Effective edge deletions (existing (row, col) pairs removed).
    DeltaEdgesDeleted,
    /// Redundant mutations dropped as no-ops: inserts duplicating an
    /// existing edge and deletes of absent edges. Together with
    /// [`CounterId::DeltaEdgesApplied`] this partitions
    /// [`CounterId::DeltaEdgesRequested`] with zero remainder.
    DeltaEdgesRedundant,
    /// Row partitions in the serving plan at each epoch application
    /// (dirty + clean by construction).
    DeltaPartitionsTotal,
    /// Partitions whose row range was touched by an effective mutation and
    /// therefore re-planned (and dropped from the partition cache).
    DeltaPartitionsDirty,
    /// Partitions untouched by the epoch's mutations: they keep their plan
    /// and stay cache-resident.
    DeltaPartitionsClean,
    /// Frontier size a from-scratch recompute would have seeded (the full
    /// per-query restart cost the incremental path is measured against).
    DeltaFrontierFull,
    /// Frontier vertices the incremental recompute actually seeded
    /// (affected boundary + insertion tails).
    DeltaFrontierSeeded,
    /// Frontier vertices the incremental recompute avoided seeding versus
    /// a from-scratch rerun. Together with
    /// [`CounterId::DeltaFrontierSeeded`] this partitions
    /// [`CounterId::DeltaFrontierFull`] with zero remainder.
    DeltaFrontierSaved,
    /// Partition outputs silently corrupted by the fault plan's
    /// `SilentFlip` verdicts (no detectable event is raised at injection
    /// time — only the ABFT merge guard can catch them).
    SdcInjected,
    /// Corruptions caught by the merge-time checksum guard. Together with
    /// [`CounterId::SdcEscaped`] this partitions
    /// [`CounterId::SdcInjected`] with zero remainder.
    SdcDetected,
    /// Detected corruptions repaired by recomputing the partition on a
    /// healthy DPU. Equal to [`CounterId::SdcDetected`] by construction
    /// (detection always localizes to one partition, which is re-run).
    SdcCorrected,
    /// Corruptions that flowed into merged results unchecked (verification
    /// disabled). Zero whenever the merge guard is active.
    SdcEscaped,
    /// Partition outputs the merge guard verified (clean or corrupt).
    SdcChecks,
    /// Simulated DPU cycles spent re-running corrupted partitions on
    /// healthy stand-ins (informational; charged to the host-side merge
    /// phase, outside the slot/tasklet cycle partitions).
    SdcRecomputeCycles,
    /// Corruption strikes recorded against DPUs by the service health
    /// scoreboard (one per corrupted partition attributed to a DPU).
    QuarantineStrikes,
    /// DPUs moved into quarantine after reaching the strike threshold.
    QuarantineEvents,
    /// Serving-plan rebuilds triggered by quarantine changes (the machine
    /// is re-partitioned over the remaining healthy DPUs).
    QuarantineReplans,
    /// Machine size the quarantine scoreboard tracks (healthy +
    /// quarantined by construction).
    QuarantineDpusTotal,
    /// DPUs still eligible for kernel launches. Together with
    /// [`CounterId::QuarantineDpusQuarantined`] this partitions
    /// [`CounterId::QuarantineDpusTotal`] with zero remainder.
    QuarantineDpusActive,
    /// DPUs excluded from serving plans for exceeding the corruption
    /// strike threshold.
    QuarantineDpusQuarantined,
}

impl CounterId {
    /// Every counter, in stable display/index order.
    pub const ALL: [CounterId; NUM_COUNTERS] = [
        CounterId::SlotIssue,
        CounterId::SlotMemory,
        CounterId::SlotRevolver,
        CounterId::SlotRf,
        CounterId::DpuCycles,
        CounterId::TaskletIssue,
        CounterId::TaskletDispatch,
        CounterId::TaskletRevolver,
        CounterId::TaskletRf,
        CounterId::TaskletDmaQueue,
        CounterId::TaskletDmaStartup,
        CounterId::TaskletDmaTransfer,
        CounterId::TaskletMutex,
        CounterId::TaskletBarrier,
        CounterId::TaskletTail,
        CounterId::TaskletBudget,
        CounterId::SpinRetries,
        CounterId::DmaTransfers,
        CounterId::DmaBytes,
        CounterId::MutexAcquires,
        CounterId::BarrierCrossings,
        CounterId::XferScatterBytes,
        CounterId::XferBroadcastBytes,
        CounterId::XferGatherBytes,
        CounterId::XferBatches,
        CounterId::HostMergeBytes,
        CounterId::HostScanBytes,
        CounterId::HostReductions,
        CounterId::SlotFault,
        CounterId::TaskletFault,
        CounterId::FaultsInjected,
        CounterId::FaultsDetected,
        CounterId::FaultsRecovered,
        CounterId::FaultsLost,
        CounterId::FaultRetries,
        CounterId::FaultRedistributions,
        CounterId::FaultStragglerCycles,
        CounterId::FaultRetryCycles,
        CounterId::FaultTimeouts,
        CounterId::ServeCacheHits,
        CounterId::ServeCacheMisses,
        CounterId::ServeBroadcastSavedBytes,
        CounterId::ServeBatchesSaved,
        CounterId::CkptSnapshots,
        CounterId::CkptBytes,
        CounterId::CkptRestores,
        CounterId::ServeShed,
        CounterId::QueueArrivals,
        CounterId::QueueAdmitted,
        CounterId::QueueRejected,
        CounterId::QueueServed,
        CounterId::QueueShedWait,
        CounterId::QueueShedDeadline,
        CounterId::QueueWaitCycles,
        CounterId::TenantsActive,
        CounterId::ServeCacheEvictions,
        CounterId::ServeEvictedBytes,
        CounterId::DeltaEpochs,
        CounterId::DeltaEdgesRequested,
        CounterId::DeltaEdgesApplied,
        CounterId::DeltaEdgesInserted,
        CounterId::DeltaEdgesDeleted,
        CounterId::DeltaEdgesRedundant,
        CounterId::DeltaPartitionsTotal,
        CounterId::DeltaPartitionsDirty,
        CounterId::DeltaPartitionsClean,
        CounterId::DeltaFrontierFull,
        CounterId::DeltaFrontierSeeded,
        CounterId::DeltaFrontierSaved,
        CounterId::SdcInjected,
        CounterId::SdcDetected,
        CounterId::SdcCorrected,
        CounterId::SdcEscaped,
        CounterId::SdcChecks,
        CounterId::SdcRecomputeCycles,
        CounterId::QuarantineStrikes,
        CounterId::QuarantineEvents,
        CounterId::QuarantineReplans,
        CounterId::QuarantineDpusTotal,
        CounterId::QuarantineDpusActive,
        CounterId::QuarantineDpusQuarantined,
    ];

    /// The corruption-outcome ledger (sums to [`CounterId::SdcInjected`]).
    pub const SDC_OUTCOMES: [CounterId; 2] =
        [CounterId::SdcDetected, CounterId::SdcEscaped];

    /// The quarantine machine partition (sums to
    /// [`CounterId::QuarantineDpusTotal`]).
    pub const QUARANTINE_DPUS: [CounterId; 2] =
        [CounterId::QuarantineDpusActive, CounterId::QuarantineDpusQuarantined];

    /// The effective-edge ledger (sums to
    /// [`CounterId::DeltaEdgesApplied`]).
    pub const DELTA_EDGES: [CounterId; 2] =
        [CounterId::DeltaEdgesInserted, CounterId::DeltaEdgesDeleted];

    /// The mutation-outcome ledger (sums to
    /// [`CounterId::DeltaEdgesRequested`]).
    pub const DELTA_OUTCOMES: [CounterId; 2] =
        [CounterId::DeltaEdgesApplied, CounterId::DeltaEdgesRedundant];

    /// The partition-dirtiness ledger (sums to
    /// [`CounterId::DeltaPartitionsTotal`]).
    pub const DELTA_PARTITIONS: [CounterId; 2] =
        [CounterId::DeltaPartitionsDirty, CounterId::DeltaPartitionsClean];

    /// The incremental-recompute frontier ledger (sums to
    /// [`CounterId::DeltaFrontierFull`]).
    pub const DELTA_FRONTIER: [CounterId; 2] =
        [CounterId::DeltaFrontierSeeded, CounterId::DeltaFrontierSaved];

    /// The admission ledger (sums to [`CounterId::QueueArrivals`]).
    pub const QUEUE_ADMISSION: [CounterId; 2] =
        [CounterId::QueueAdmitted, CounterId::QueueRejected];

    /// The outcome ledger of admitted queries (sums to
    /// [`CounterId::QueueAdmitted`]).
    pub const QUEUE_OUTCOMES: [CounterId; 3] = [
        CounterId::QueueServed,
        CounterId::QueueShedWait,
        CounterId::QueueShedDeadline,
    ];

    /// The slot-level cycle categories (sum to [`CounterId::DpuCycles`]).
    pub const SLOT_CYCLES: [CounterId; 5] = [
        CounterId::SlotIssue,
        CounterId::SlotMemory,
        CounterId::SlotRevolver,
        CounterId::SlotRf,
        CounterId::SlotFault,
    ];

    /// The fault-cycle categories (sum to [`CounterId::SlotFault`]).
    pub const FAULT_CYCLES: [CounterId; 2] =
        [CounterId::FaultStragglerCycles, CounterId::FaultRetryCycles];

    /// The tasklet-level cycle categories (sum to
    /// [`CounterId::TaskletBudget`]).
    pub const TASKLET_CYCLES: [CounterId; 11] = [
        CounterId::TaskletIssue,
        CounterId::TaskletDispatch,
        CounterId::TaskletRevolver,
        CounterId::TaskletRf,
        CounterId::TaskletDmaQueue,
        CounterId::TaskletDmaStartup,
        CounterId::TaskletDmaTransfer,
        CounterId::TaskletMutex,
        CounterId::TaskletBarrier,
        CounterId::TaskletTail,
        CounterId::TaskletFault,
    ];

    /// Stable index of this counter within [`CounterId::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable dotted label used by the JSON/CSV exporters and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            CounterId::SlotIssue => "slot.issue",
            CounterId::SlotMemory => "slot.memory",
            CounterId::SlotRevolver => "slot.revolver",
            CounterId::SlotRf => "slot.rf",
            CounterId::DpuCycles => "dpu.cycles",
            CounterId::TaskletIssue => "tasklet.issue",
            CounterId::TaskletDispatch => "tasklet.dispatch",
            CounterId::TaskletRevolver => "tasklet.revolver",
            CounterId::TaskletRf => "tasklet.rf",
            CounterId::TaskletDmaQueue => "tasklet.dma_queue",
            CounterId::TaskletDmaStartup => "tasklet.dma_startup",
            CounterId::TaskletDmaTransfer => "tasklet.dma_transfer",
            CounterId::TaskletMutex => "tasklet.mutex",
            CounterId::TaskletBarrier => "tasklet.barrier",
            CounterId::TaskletTail => "tasklet.tail",
            CounterId::TaskletBudget => "tasklet.budget",
            CounterId::SpinRetries => "event.spin_retries",
            CounterId::DmaTransfers => "event.dma_transfers",
            CounterId::DmaBytes => "event.dma_bytes",
            CounterId::MutexAcquires => "event.mutex_acquires",
            CounterId::BarrierCrossings => "event.barrier_crossings",
            CounterId::XferScatterBytes => "xfer.scatter_bytes",
            CounterId::XferBroadcastBytes => "xfer.broadcast_bytes",
            CounterId::XferGatherBytes => "xfer.gather_bytes",
            CounterId::XferBatches => "xfer.batches",
            CounterId::HostMergeBytes => "host.merge_bytes",
            CounterId::HostScanBytes => "host.scan_bytes",
            CounterId::HostReductions => "host.reductions",
            CounterId::SlotFault => "slot.fault",
            CounterId::TaskletFault => "tasklet.fault",
            CounterId::FaultsInjected => "fault.injected",
            CounterId::FaultsDetected => "fault.detected",
            CounterId::FaultsRecovered => "fault.recovered",
            CounterId::FaultsLost => "fault.lost_dpus",
            CounterId::FaultRetries => "fault.retries",
            CounterId::FaultRedistributions => "fault.redistributions",
            CounterId::FaultStragglerCycles => "fault.straggler_cycles",
            CounterId::FaultRetryCycles => "fault.retry_cycles",
            CounterId::FaultTimeouts => "fault.timeouts",
            CounterId::ServeCacheHits => "serve.cache_hits",
            CounterId::ServeCacheMisses => "serve.cache_misses",
            CounterId::ServeBroadcastSavedBytes => "serve.saved_broadcast_bytes",
            CounterId::ServeBatchesSaved => "serve.saved_batches",
            CounterId::CkptSnapshots => "ckpt.snapshots",
            CounterId::CkptBytes => "ckpt.bytes",
            CounterId::CkptRestores => "ckpt.restores",
            CounterId::ServeShed => "serve.shed",
            CounterId::QueueArrivals => "queue.arrivals",
            CounterId::QueueAdmitted => "queue.admitted",
            CounterId::QueueRejected => "queue.rejected",
            CounterId::QueueServed => "queue.served",
            CounterId::QueueShedWait => "queue.shed_wait",
            CounterId::QueueShedDeadline => "queue.shed_deadline",
            CounterId::QueueWaitCycles => "queue.wait_cycles",
            CounterId::TenantsActive => "tenant.active",
            CounterId::ServeCacheEvictions => "serve.cache_evictions",
            CounterId::ServeEvictedBytes => "serve.evicted_bytes",
            CounterId::DeltaEpochs => "delta.epochs",
            CounterId::DeltaEdgesRequested => "delta.edges_requested",
            CounterId::DeltaEdgesApplied => "delta.edges_applied",
            CounterId::DeltaEdgesInserted => "delta.edges_inserted",
            CounterId::DeltaEdgesDeleted => "delta.edges_deleted",
            CounterId::DeltaEdgesRedundant => "delta.edges_redundant",
            CounterId::DeltaPartitionsTotal => "delta.partitions_total",
            CounterId::DeltaPartitionsDirty => "delta.partitions_dirty",
            CounterId::DeltaPartitionsClean => "delta.partitions_clean",
            CounterId::DeltaFrontierFull => "delta.frontier_full",
            CounterId::DeltaFrontierSeeded => "delta.frontier_seeded",
            CounterId::DeltaFrontierSaved => "delta.frontier_saved",
            CounterId::SdcInjected => "sdc.injected",
            CounterId::SdcDetected => "sdc.detected",
            CounterId::SdcCorrected => "sdc.corrected",
            CounterId::SdcEscaped => "sdc.escaped",
            CounterId::SdcChecks => "sdc.checks",
            CounterId::SdcRecomputeCycles => "sdc.recompute_cycles",
            CounterId::QuarantineStrikes => "quarantine.strikes",
            CounterId::QuarantineEvents => "quarantine.events",
            CounterId::QuarantineReplans => "quarantine.replans",
            CounterId::QuarantineDpusTotal => "quarantine.dpus_total",
            CounterId::QuarantineDpusActive => "quarantine.dpus_active",
            CounterId::QuarantineDpusQuarantined => "quarantine.dpus_quarantined",
        }
    }
}

impl std::fmt::Display for CounterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fixed-size bank of all registry counters. Cheap to copy, merge, and
/// compare; the zero value is the empty set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CounterSet {
    values: [u64; NUM_COUNTERS],
}

// Written out because std only derives `Default` for arrays up to 32
// elements, and the registry outgrew that.
impl Default for CounterSet {
    fn default() -> Self {
        CounterSet { values: [0; NUM_COUNTERS] }
    }
}

impl CounterSet {
    /// An all-zero counter set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Adds `n` to `id`.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.values[id.index()] += n;
    }

    /// Overwrites `id` with `n`.
    pub fn set(&mut self, id: CounterId, n: u64) {
        self.values[id.index()] = n;
    }

    /// The current value of `id`.
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id.index()]
    }

    /// Element-wise accumulation of another set into this one.
    pub fn merge(&mut self, other: &CounterSet) {
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Whether every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    /// Sum of the values of `ids`.
    pub fn sum(&self, ids: &[CounterId]) -> u64 {
        ids.iter().map(|&id| self.get(id)).sum()
    }

    /// Iterates `(id, value)` pairs in registry order.
    pub fn iter(&self) -> impl Iterator<Item = (CounterId, u64)> + '_ {
        CounterId::ALL.iter().map(move |&id| (id, self.get(id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for (pos, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(id.index(), pos, "{id} out of place in ALL");
            assert!(seen.insert(id.label()), "duplicate label {id}");
        }
        assert_eq!(CounterId::ALL.len(), NUM_COUNTERS);
    }

    #[test]
    fn set_accumulates_and_merges() {
        let mut a = CounterSet::new();
        assert!(a.is_empty());
        a.add(CounterId::DmaBytes, 100);
        a.add(CounterId::DmaBytes, 24);
        a.set(CounterId::DpuCycles, 7);
        let mut b = CounterSet::new();
        b.add(CounterId::DmaBytes, 1);
        b.merge(&a);
        assert_eq!(b.get(CounterId::DmaBytes), 125);
        assert_eq!(b.get(CounterId::DpuCycles), 7);
        assert!(!b.is_empty());
    }

    #[test]
    fn group_sums_use_member_values() {
        let mut c = CounterSet::new();
        for id in CounterId::SLOT_CYCLES {
            c.add(id, 10);
        }
        c.set(CounterId::DpuCycles, 10 * CounterId::SLOT_CYCLES.len() as u64);
        assert_eq!(c.sum(&CounterId::SLOT_CYCLES), c.get(CounterId::DpuCycles));
    }

    #[test]
    fn iter_visits_every_counter_once() {
        let c = CounterSet::new();
        assert_eq!(c.iter().count(), NUM_COUNTERS);
    }
}

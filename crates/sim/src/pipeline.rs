//! Cycle-level discrete-event model of one DPU's revolver pipeline.
//!
//! The DPU is a fine-grained multithreaded in-order core (§2.3.2): one
//! instruction may be dispatched per cycle, drawn round-robin from the
//! ready tasklets, and consecutive instructions of the *same* tasklet must
//! be at least [`PipelineConfig::revolver_period`] cycles apart (11 on
//! UPMEM) — the "revolver" constraint that removes forwarding and
//! interlocks. The model additionally captures:
//!
//! * **blocking DMA** through a single per-DPU engine that serializes
//!   concurrent tasklet transfers (MRAM bandwidth sharing);
//! * **mutexes** with hand-off semantics and **barriers** across all live
//!   tasklets;
//! * **even/odd register-file bank conflicts**, applied to a deterministic
//!   pseudo-random subset of register-reading instructions.
//!
//! Two levels of cycle attribution are produced:
//!
//! * **Slot-level** (Fig 9): each idle issue slot is charged to memory
//!   (a tasklet is waiting on DMA), register-file structural hazard, or
//!   revolver-pipeline scheduling (including the sync-induced
//!   underutilization the paper folds into this category).
//! * **Tasklet-level** (the observability layer): every cycle of every
//!   tasklet's lifetime is assigned to exactly one wait category —
//!   dispatch-slot contention, revolver spacing, RF hazard, DMA engine
//!   queueing / startup / transfer, mutex backoff, barrier parking, or
//!   post-trace tail — so the per-tasklet counters sum *exactly* to the
//!   DPU makespan, a property the invariant test suite enforces.

use crate::config::PipelineConfig;
use crate::counters::{CounterId, CounterSet};
use crate::report::{DpuProfile, DpuReport};
use crate::trace::{TaskletTrace, TraceEvent};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// May issue once `avail` is reached (covers revolver wait and DMA
    /// completion wait, which is folded into `avail`).
    Runnable,
    /// Waiting at the all-tasklet barrier.
    BarrierWait,
    /// Trace exhausted.
    Done,
}

/// Which synchronization primitive a pending wait threshold belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncKind {
    Mutex,
    Barrier,
}

struct Thread<'a> {
    events: &'a [TraceEvent],
    ev: usize,
    /// Remaining instructions in the current `Compute` block.
    remaining: u32,
    /// Earliest cycle at which the next instruction may issue.
    avail: u64,
    /// Cycle until which the thread is stalled on DMA (for attribution).
    dma_until: u64,
    status: Status,
    rf_pending: bool,
    /// Cumulative cycles spent blocked (DMA + mutex + barrier).
    stalled_cycles: u64,
    /// Cycle at which the thread blocked on mutex/barrier (for accounting).
    blocked_at: u64,
    /// Cycle just after the thread's last issued instruction.
    end_cycle: u64,
    // --- wait-anatomy thresholds for the observability layer ---
    // Absolute cycles at which successive readiness conditions for the
    // *next* issue are satisfied; the gap up to the actual issue is walked
    // through them in priority order (DMA, sync, revolver, RF) and the
    // remainder is dispatch-slot contention.
    /// Cycle just after the last issue: start of the current wait interval.
    wait_from: u64,
    /// DMA engine grant (start of this thread's transfer), if blocked.
    dma_queue_ready: u64,
    /// DMA startup window complete.
    dma_startup_ready: u64,
    /// DMA transfer complete.
    dma_done: u64,
    /// Mutex backoff elapsed / barrier released.
    sync_ready: u64,
    sync_kind: Option<SyncKind>,
    /// Revolver spacing satisfied.
    rev_ready: u64,
    /// RF-hazard penalty elapsed (== `rev_ready` when no hazard hit).
    rf_ready: u64,
    /// Per-tasklet observability counters.
    counters: CounterSet,
}

impl<'a> Thread<'a> {
    fn new(trace: &'a TaskletTrace) -> Self {
        let status = if trace.is_empty() { Status::Done } else { Status::Runnable };
        Thread {
            events: trace.events(),
            ev: 0,
            remaining: 0,
            avail: 0,
            dma_until: 0,
            status,
            rf_pending: false,
            stalled_cycles: 0,
            blocked_at: 0,
            end_cycle: 0,
            wait_from: 0,
            dma_queue_ready: 0,
            dma_startup_ready: 0,
            dma_done: 0,
            sync_ready: 0,
            sync_kind: None,
            rev_ready: 0,
            rf_ready: 0,
            counters: CounterSet::new(),
        }
    }

    /// The event the next issued instruction belongs to.
    fn current(&self) -> Option<&TraceEvent> {
        self.events.get(self.ev)
    }

    /// Advances past the current instruction; returns true when the trace
    /// is exhausted.
    fn advance(&mut self) -> bool {
        match self.events.get(self.ev) {
            Some(TraceEvent::Compute { count, .. }) => {
                if self.remaining == 0 {
                    self.remaining = *count;
                }
                self.remaining -= 1;
                if self.remaining == 0 {
                    self.ev += 1;
                }
            }
            Some(_) => self.ev += 1,
            None => {}
        }
        self.ev >= self.events.len()
    }

    /// Attributes the wait interval `[wait_from, issue_at)` to the tasklet
    /// wait categories, walking the readiness thresholds in priority order
    /// (DMA engine, synchronization, revolver, RF) and charging whatever
    /// remains — the tasklet was ready but lost the issue slot — to
    /// dispatch contention. The segments partition the interval exactly.
    fn attribute_wait(&mut self, issue_at: u64) {
        fn seg(cur: &mut u64, upto: u64, limit: u64) -> u64 {
            let bound = upto.min(limit);
            if bound > *cur {
                let d = bound - *cur;
                *cur = bound;
                d
            } else {
                0
            }
        }
        let mut cur = self.wait_from;
        let dq = seg(&mut cur, self.dma_queue_ready, issue_at);
        let ds = seg(&mut cur, self.dma_startup_ready, issue_at);
        let dt = seg(&mut cur, self.dma_done, issue_at);
        let sy = seg(&mut cur, self.sync_ready, issue_at);
        let rv = seg(&mut cur, self.rev_ready, issue_at);
        let rf = seg(&mut cur, self.rf_ready, issue_at);
        let dispatch = issue_at - cur;
        self.counters.add(CounterId::TaskletDmaQueue, dq);
        self.counters.add(CounterId::TaskletDmaStartup, ds);
        self.counters.add(CounterId::TaskletDmaTransfer, dt);
        match self.sync_kind {
            Some(SyncKind::Mutex) => self.counters.add(CounterId::TaskletMutex, sy),
            Some(SyncKind::Barrier) => self.counters.add(CounterId::TaskletBarrier, sy),
            None => debug_assert_eq!(sy, 0),
        }
        self.counters.add(CounterId::TaskletRevolver, rv);
        self.counters.add(CounterId::TaskletRf, rf);
        self.counters.add(CounterId::TaskletDispatch, dispatch);
    }

    /// Resets the wait-anatomy thresholds after an issue at `issue_at`
    /// whose revolver spacing expires at `rev_ready`.
    fn begin_wait(&mut self, issue_at: u64, rev_ready: u64) {
        self.wait_from = issue_at + 1;
        self.dma_queue_ready = 0;
        self.dma_startup_ready = 0;
        self.dma_done = 0;
        self.sync_ready = 0;
        self.sync_kind = None;
        self.rev_ready = rev_ready;
        self.rf_ready = rev_ready;
    }
}

#[derive(Default)]
struct Mutex {
    held_by: Option<usize>,
}

/// SplitMix64 finalizer, used for deterministic hazard selection and — via
/// [`crate::faults`] — for order-independent fault draws.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Replays tasklet traces against the revolver-pipeline model, returning
/// the slot-level cycle report for one DPU. Convenience wrapper around
/// [`simulate_dpu_profiled`] for callers that do not need the counter
/// registry.
///
/// # Panics
///
/// Panics if the traces deadlock (e.g. a mutex is released by a tasklet
/// that never acquired it, or live tasklets block forever) — this indicates
/// a malformed kernel trace, not a data-dependent condition.
pub fn simulate_dpu(traces: &[TaskletTrace], cfg: &PipelineConfig) -> DpuReport {
    simulate_dpu_profiled(traces, cfg).report
}

/// Replays tasklet traces against the revolver-pipeline model, returning
/// the slot-level report plus the full observability profile: the DPU's
/// counter rollup and one exact per-tasklet cycle attribution each.
///
/// Invariants (enforced by the `counter_invariants` test suite):
///
/// * slot level — `slot.issue + slot.memory + slot.revolver + slot.rf ==
///   dpu.cycles`;
/// * tasklet level — for every tasklet, issue + dispatch + revolver + rf +
///   dma(queue/startup/transfer) + mutex + barrier + tail ==
///   `dpu.cycles`, so the rollup sums to `tasklet.budget`.
///
/// # Panics
///
/// Same deadlock conditions as [`simulate_dpu`].
pub fn simulate_dpu_profiled(traces: &[TaskletTrace], cfg: &PipelineConfig) -> DpuProfile {
    let mut threads: Vec<Thread<'_>> = traces.iter().map(Thread::new).collect();
    let n = threads.len();
    let mut mutexes: Vec<Mutex> = Vec::new();
    let mut barrier_arrived: Vec<bool> = vec![false; n];
    let mut engine_free: u64 = 0;

    let mut cycle: u64 = 0; // next free issue slot
    let mut issued: u64 = 0;
    let mut idle_mem: u64 = 0;
    let mut idle_rev: u64 = 0;
    let mut idle_rf: u64 = 0;
    let mut spin_retries: u64 = 0;
    let mut mix = crate::instr::InstrMix::new();
    for t in traces {
        mix.merge(&t.instr_mix());
    }
    let hazard_threshold = (cfg.rf_hazard_rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64;

    loop {
        // Pick the runnable thread with the earliest availability,
        // tie-broken round-robin by id.
        let mut best: Option<usize> = None;
        for (tid, th) in threads.iter().enumerate() {
            if th.status == Status::Runnable {
                match best {
                    None => best = Some(tid),
                    Some(b) if th.avail < threads[b].avail => best = Some(tid),
                    _ => {}
                }
            }
        }
        let Some(tid) = best else {
            if threads.iter().all(|t| t.status == Status::Done) {
                break;
            }
            panic!("deadlock: all live tasklets blocked on synchronization");
        };

        let avail = threads[tid].avail;
        let issue_at = avail.max(cycle);
        if issue_at > cycle {
            // Attribute the idle gap [cycle, issue_at).
            let gap = issue_at - cycle;
            let memory_stalled = threads.iter().any(|t| t.dma_until > cycle);
            if memory_stalled {
                idle_mem += gap;
            } else if threads[tid].rf_pending {
                let rf = gap.min(cfg.rf_hazard_penalty as u64);
                idle_rf += rf;
                idle_rev += gap - rf;
            } else {
                idle_rev += gap;
            }
        }
        threads[tid].rf_pending = false;

        // Tasklet-level: settle the wait interval that ends at this issue.
        threads[tid].attribute_wait(issue_at);
        threads[tid].counters.add(CounterId::TaskletIssue, 1);

        // Issue exactly one instruction of the current event at `issue_at`.
        let event = *threads[tid].current().expect("runnable thread has a current event");
        issued += 1;
        cycle = issue_at + 1;
        threads[tid].end_cycle = cycle;
        let mut next_avail = issue_at + cfg.revolver_period as u64;
        threads[tid].begin_wait(issue_at, next_avail);

        // Register-file even/odd bank conflict on register-reading classes.
        if let TraceEvent::Compute { class, .. } = event {
            if class.reads_registers() && mix64(issued ^ ((tid as u64) << 48)) < hazard_threshold
            {
                next_avail += cfg.rf_hazard_penalty as u64;
                threads[tid].rf_pending = true;
                threads[tid].rf_ready = next_avail;
            }
        }

        match event {
            TraceEvent::Compute { .. } => {}
            TraceEvent::Dma { bytes } => {
                // DMA through the serialized per-DPU engine. On the real
                // machine the issuing tasklet blocks until completion; the
                // §6.4 what-if lets it keep computing.
                let start = engine_free.max(cycle);
                let done = start + cfg.dma_cycles(bytes);
                engine_free = done;
                threads[tid].counters.add(CounterId::DmaTransfers, 1);
                threads[tid].counters.add(CounterId::DmaBytes, bytes as u64);
                if !cfg.non_blocking_dma {
                    threads[tid].dma_until = done;
                    threads[tid].stalled_cycles += done.saturating_sub(cycle);
                    next_avail = next_avail.max(done);
                    threads[tid].dma_queue_ready = start;
                    threads[tid].dma_startup_ready =
                        (start + cfg.dma_startup_cycles as u64).min(done);
                    threads[tid].dma_done = done;
                }
            }
            TraceEvent::MutexLock { id } => {
                if mutexes.len() <= id as usize {
                    mutexes.resize_with(id as usize + 1, Mutex::default);
                }
                let m = &mut mutexes[id as usize];
                match m.held_by {
                    None => {
                        m.held_by = Some(tid);
                        threads[tid].counters.add(CounterId::MutexAcquires, 1);
                    }
                    Some(_) => {
                        // Contended acquire: the attempt failed, the tasklet
                        // backs off and retries (§6.4.2 — contention inflates
                        // sync instruction counts). The event is not consumed.
                        spin_retries += 1;
                        threads[tid].counters.add(CounterId::SpinRetries, 1);
                        mix.add(crate::instr::InstrClass::Sync, 1);
                        let backoff = cfg.mutex_backoff_cycles as u64;
                        threads[tid].sync_ready = issue_at + backoff;
                        threads[tid].sync_kind = Some(SyncKind::Mutex);
                        threads[tid].avail = (issue_at + backoff).max(next_avail);
                        threads[tid].stalled_cycles += backoff;
                        continue;
                    }
                }
            }
            TraceEvent::MutexUnlock { id } => {
                let m = mutexes
                    .get_mut(id as usize)
                    .unwrap_or_else(|| panic!("unlock of unknown mutex {id}"));
                assert_eq!(m.held_by, Some(tid), "unlock by non-holder tasklet {tid}");
                m.held_by = None;
            }
            TraceEvent::Barrier => {
                threads[tid].counters.add(CounterId::BarrierCrossings, 1);
                barrier_arrived[tid] = true;
                threads[tid].status = Status::BarrierWait;
                threads[tid].blocked_at = cycle;
                try_release_barrier(&mut threads, &mut barrier_arrived, cycle);
            }
        }

        // Consume the instruction and update thread scheduling state.
        // (avail carries the revolver spacing even across mutex/barrier
        // blocking, so a woken thread still honours the dispatch gap.)
        threads[tid].avail = next_avail;
        let done = threads[tid].advance();
        if done {
            threads[tid].status = Status::Done;
            // A tasklet finishing may be the last thing a barrier waits on.
            try_release_barrier(&mut threads, &mut barrier_arrived, cycle);
        }
    }

    // An in-flight DMA keeps the kernel alive even when no instruction
    // follows it; the makespan covers the last completion, and the trailing
    // wait is a memory stall.
    idle_mem += engine_free.saturating_sub(cycle);
    let total_cycles = cycle.max(engine_free) + cfg.pipeline_depth as u64;
    let active_thread_area: u64 = threads
        .iter()
        .map(|t| t.end_cycle.saturating_sub(t.stalled_cycles))
        .sum();
    let avg_active_threads =
        if total_cycles == 0 { 0.0 } else { active_thread_area as f64 / total_cycles as f64 };

    // Close every tasklet's books: whatever follows its last issue — peer
    // skew, the trailing DMA window, and pipeline drain — is its tail.
    let mut counters = CounterSet::new();
    let mut tasklets = Vec::with_capacity(n);
    for th in &mut threads {
        th.counters.add(CounterId::TaskletTail, total_cycles - th.wait_from.min(total_cycles));
        debug_assert_eq!(
            th.counters.sum(&CounterId::TASKLET_CYCLES),
            total_cycles,
            "tasklet cycle attribution must partition the makespan",
        );
        counters.merge(&th.counters);
        tasklets.push(th.counters);
    }
    counters.add(CounterId::SlotIssue, issued);
    counters.add(CounterId::SlotMemory, idle_mem);
    counters
        .add(CounterId::SlotRevolver, idle_rev + (total_cycles - issued - idle_mem - idle_rev - idle_rf));
    counters.add(CounterId::SlotRf, idle_rf);
    counters.add(CounterId::DpuCycles, total_cycles);
    counters.add(CounterId::TaskletBudget, n as u64 * total_cycles);

    DpuProfile {
        report: DpuReport {
            total_cycles,
            issued_instructions: issued,
            active_cycles: issued,
            idle_memory_cycles: idle_mem,
            idle_revolver_cycles: idle_rev
                + (total_cycles - issued - idle_mem - idle_rev - idle_rf),
            idle_rf_cycles: idle_rf,
            instr_mix: mix,
            avg_active_threads,
            spin_retries,
        },
        counters,
        tasklets,
    }
}

/// Releases the all-tasklet barrier if every live tasklet has arrived.
fn try_release_barrier(threads: &mut [Thread<'_>], arrived: &mut [bool], cycle: u64) {
    let any_waiting = threads.iter().any(|t| t.status == Status::BarrierWait);
    if !any_waiting {
        return;
    }
    let all_arrived =
        threads.iter().enumerate().all(|(i, t)| t.status == Status::Done || arrived[i]);
    if !all_arrived {
        return;
    }
    for (i, th) in threads.iter_mut().enumerate() {
        arrived[i] = false;
        if th.status == Status::BarrierWait {
            th.status = Status::Runnable;
            th.stalled_cycles += cycle - th.blocked_at;
            th.avail = th.avail.max(cycle);
            th.sync_ready = cycle;
            th.sync_kind = Some(SyncKind::Barrier);
        }
    }
}

/// Cheap analytic lower-bound-style estimate of the cycles a trace set
/// needs, used for DPUs outside the detailed sample
/// ([`crate::config::SimFidelity::Sampled`]).
///
/// Takes the maximum of three structural bounds: the single-issue pipeline
/// bound, the per-thread revolver bound (instructions spaced by the
/// revolver period plus that thread's DMA wait), and the serialized DMA
/// engine bound.
/// Extra makespan cycles a straggler DPU adds when its whole pipeline runs
/// `multiplier`× slow (clock droop / thermal throttling at rank level).
/// Applied on top of a simulated or estimated base makespan by the fault
/// layer; `multiplier ≤ 1` adds nothing.
pub fn straggler_extra_cycles(base_cycles: u64, multiplier: f64) -> u64 {
    ((multiplier - 1.0).max(0.0) * base_cycles as f64).ceil() as u64
}

pub fn estimate_cycles(traces: &[TaskletTrace], cfg: &PipelineConfig) -> u64 {
    let mut issue_bound: u64 = 0;
    let mut thread_bound: u64 = 0;
    let mut dma_bound: u64 = 0;
    for t in traces {
        let instrs = t.instructions();
        issue_bound += instrs;
        let mut dma_wait = 0u64;
        for e in t.events() {
            if let TraceEvent::Dma { bytes } = e {
                dma_wait += cfg.dma_cycles(*bytes);
            }
        }
        dma_bound += dma_wait;
        thread_bound = thread_bound.max(instrs * cfg.revolver_period as u64 + dma_wait);
    }
    issue_bound.max(thread_bound).max(dma_bound) + cfg.pipeline_depth as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstrClass;

    fn cfg() -> PipelineConfig {
        PipelineConfig { rf_hazard_rate: 0.0, ..PipelineConfig::default() }
    }

    #[test]
    fn empty_traces_take_only_drain_cycles() {
        let r = simulate_dpu(&[TaskletTrace::new()], &cfg());
        assert_eq!(r.issued_instructions, 0);
        assert_eq!(r.total_cycles, cfg().pipeline_depth as u64);
    }

    #[test]
    fn single_thread_is_revolver_bound() {
        let mut t = TaskletTrace::new();
        t.compute(InstrClass::Arith, 100);
        let r = simulate_dpu(&[t], &cfg());
        assert_eq!(r.issued_instructions, 100);
        // 100 instructions spaced 11 apart: last issues at cycle 99*11.
        assert_eq!(r.total_cycles, 99 * 11 + 1 + cfg().pipeline_depth as u64);
        assert!(r.idle_revolver_cycles > 0);
        assert_eq!(r.idle_memory_cycles, 0);
    }

    #[test]
    fn eleven_threads_saturate_the_pipeline() {
        let traces: Vec<TaskletTrace> = (0..11)
            .map(|_| {
                let mut t = TaskletTrace::new();
                t.compute(InstrClass::Arith, 50);
                t
            })
            .collect();
        let r = simulate_dpu(&traces, &cfg());
        assert_eq!(r.issued_instructions, 550);
        // With >= revolver_period ready threads the pipeline issues every
        // cycle: makespan ~= instruction count.
        assert!(r.total_cycles <= 550 + cfg().pipeline_depth as u64 + 11);
        assert_eq!(r.idle_memory_cycles, 0);
    }

    #[test]
    fn more_threads_beat_fewer_threads() {
        let work = |n: u32, per: u32| -> Vec<TaskletTrace> {
            (0..n)
                .map(|_| {
                    let mut t = TaskletTrace::new();
                    t.compute(InstrClass::Arith, per);
                    t
                })
                .collect()
        };
        // Same total work, spread over 2 vs 16 tasklets.
        let r2 = simulate_dpu(&work(2, 800), &cfg());
        let r16 = simulate_dpu(&work(16, 100), &cfg());
        assert!(r16.total_cycles < r2.total_cycles);
    }

    #[test]
    fn dma_blocks_the_issuing_thread_only() {
        // Thread 0 DMAs then computes; thread 1 just computes. The pipeline
        // should keep issuing thread 1 during thread 0's stall.
        let mut t0 = TaskletTrace::new();
        t0.dma(2048);
        t0.compute(InstrClass::Arith, 5);
        let mut t1 = TaskletTrace::new();
        t1.compute(InstrClass::Arith, 200);
        let r = simulate_dpu(&[t0, t1], &cfg());
        assert_eq!(r.issued_instructions, 206);
        // Thread 1's 200 instructions spaced 11 apart dominate.
        assert!(r.total_cycles >= 199 * 11);
    }

    #[test]
    fn dma_engine_serializes_transfers() {
        let mk = |count: usize| -> TaskletTrace {
            let mut t = TaskletTrace::new();
            for _ in 0..count {
                t.dma(4096);
            }
            t
        };
        let one = simulate_dpu(&[mk(8)], &cfg());
        let spread: Vec<TaskletTrace> = (0..8).map(|_| mk(1)).collect();
        let eight = simulate_dpu(&spread, &cfg());
        // Same total bytes through one serialized engine: similar makespan.
        let ratio = eight.total_cycles as f64 / one.total_cycles as f64;
        assert!(ratio > 0.8 && ratio < 1.2, "ratio {ratio}");
        assert!(one.idle_memory_cycles > 0);
    }

    #[test]
    fn mutex_serializes_critical_sections() {
        let mk = || -> TaskletTrace {
            let mut t = TaskletTrace::new();
            for _ in 0..20 {
                t.mutex_lock(0);
                t.compute(InstrClass::LoadStore, 4);
                t.mutex_unlock(0);
            }
            t
        };
        let contended = simulate_dpu(&[mk(), mk(), mk(), mk()], &cfg());
        // Four disjoint mutexes: no contention.
        let mk_id = |id: u16| -> TaskletTrace {
            let mut t = TaskletTrace::new();
            for _ in 0..20 {
                t.mutex_lock(id);
                t.compute(InstrClass::LoadStore, 4);
                t.mutex_unlock(id);
            }
            t
        };
        let free = simulate_dpu(&[mk_id(0), mk_id(1), mk_id(2), mk_id(3)], &cfg());
        assert!(contended.total_cycles > free.total_cycles);
        // Contention produces retry attempts, each an extra Sync issue.
        assert!(contended.spin_retries > 0);
        assert_eq!(free.spin_retries, 0);
        assert_eq!(
            contended.issued_instructions,
            free.issued_instructions + contended.spin_retries,
        );
        assert!(
            contended.instr_mix.count(crate::instr::InstrClass::Sync)
                > free.instr_mix.count(crate::instr::InstrClass::Sync)
        );
    }

    #[test]
    fn barrier_waits_for_all_live_tasklets() {
        // Thread 0: short work then barrier. Thread 1: long work then
        // barrier. Both then compute a tail. The tails can only start after
        // the long thread arrives.
        let mut t0 = TaskletTrace::new();
        t0.compute(InstrClass::Arith, 1);
        t0.barrier();
        t0.compute(InstrClass::Arith, 1);
        let mut t1 = TaskletTrace::new();
        t1.compute(InstrClass::Arith, 300);
        t1.barrier();
        t1.compute(InstrClass::Arith, 1);
        let r = simulate_dpu(&[t0, t1], &cfg());
        assert!(r.total_cycles >= 299 * 11);
        assert_eq!(r.issued_instructions, 1 + 1 + 300 + 1 + 2);
    }

    #[test]
    fn cycles_decompose_into_active_and_idle() {
        let mut t0 = TaskletTrace::new();
        t0.dma(512);
        t0.compute(InstrClass::Arith, 40);
        t0.mutex_lock(3);
        t0.compute(InstrClass::LoadStore, 2);
        t0.mutex_unlock(3);
        let mut t1 = TaskletTrace::new();
        t1.compute(InstrClass::Control, 25);
        t1.barrier();
        let mut t0b = t0.clone();
        t0b.barrier();
        let r = simulate_dpu(&[t0b, t1], &cfg());
        assert_eq!(
            r.total_cycles,
            r.active_cycles + r.idle_memory_cycles + r.idle_revolver_cycles + r.idle_rf_cycles,
        );
    }

    #[test]
    fn rf_hazards_appear_when_enabled() {
        let mut c = cfg();
        c.rf_hazard_rate = 1.0; // every register-reading instruction conflicts
        let mut t = TaskletTrace::new();
        t.compute(InstrClass::Arith, 50);
        let hazard = simulate_dpu(&[t.clone()], &c);
        let clean = simulate_dpu(&[t], &cfg());
        assert!(hazard.total_cycles > clean.total_cycles);
        assert!(hazard.idle_rf_cycles > 0);
        assert_eq!(clean.idle_rf_cycles, 0);
    }

    #[test]
    fn avg_active_threads_scales_with_parallelism() {
        let mk = |n: u32| -> Vec<TaskletTrace> {
            (0..n)
                .map(|_| {
                    let mut t = TaskletTrace::new();
                    t.compute(InstrClass::Arith, 200);
                    t
                })
                .collect()
        };
        let r1 = simulate_dpu(&mk(1), &cfg());
        let r8 = simulate_dpu(&mk(8), &cfg());
        assert!(r8.avg_active_threads > r1.avg_active_threads);
        assert!(r1.avg_active_threads <= 1.01);
    }

    #[test]
    #[should_panic(expected = "unlock by non-holder")]
    fn unlock_without_lock_panics() {
        let mut t = TaskletTrace::new();
        t.mutex_unlock(0);
        let mut other = TaskletTrace::new();
        other.mutex_lock(0);
        other.mutex_unlock(0);
        // Make the unlocking thread run second so the mutex exists but is
        // held by the other tasklet... then unlock by non-holder panics.
        let mut holder = TaskletTrace::new();
        holder.mutex_lock(0);
        holder.compute(InstrClass::Arith, 100);
        holder.mutex_unlock(0);
        simulate_dpu(&[holder, t], &cfg());
    }

    #[test]
    fn estimate_tracks_simulation_within_2x() {
        let mut traces = Vec::new();
        for i in 0..8u32 {
            let mut t = TaskletTrace::new();
            t.dma_stream(4000 + i as u64 * 500, 512, 2);
            t.compute(InstrClass::Arith, 300 + i * 37);
            t.compute(InstrClass::LoadStore, 80);
            traces.push(t);
        }
        let sim = simulate_dpu(&traces, &cfg()).total_cycles as f64;
        let est = estimate_cycles(&traces, &cfg()) as f64;
        let ratio = sim / est;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    // --- observability-layer tests ---

    fn assert_tasklet_partition(profile: &DpuProfile) {
        let total = profile.report.total_cycles;
        for (i, t) in profile.tasklets.iter().enumerate() {
            assert_eq!(
                t.sum(&CounterId::TASKLET_CYCLES),
                total,
                "tasklet {i} attribution does not cover the makespan",
            );
        }
        assert_eq!(
            profile.counters.sum(&CounterId::TASKLET_CYCLES),
            profile.counters.get(CounterId::TaskletBudget),
        );
        assert_eq!(
            profile.counters.sum(&CounterId::SLOT_CYCLES),
            profile.counters.get(CounterId::DpuCycles),
        );
    }

    #[test]
    fn profiled_report_matches_plain_simulation() {
        let mut t0 = TaskletTrace::new();
        t0.dma(1024);
        t0.compute(InstrClass::Arith, 60);
        let mut t1 = TaskletTrace::new();
        t1.compute(InstrClass::LoadStore, 90);
        let traces = vec![t0, t1];
        let plain = simulate_dpu(&traces, &cfg());
        let profile = simulate_dpu_profiled(&traces, &cfg());
        assert_eq!(plain, profile.report);
        assert_tasklet_partition(&profile);
    }

    #[test]
    fn solo_thread_waits_are_all_revolver() {
        let mut t = TaskletTrace::new();
        t.compute(InstrClass::Arith, 20);
        let p = simulate_dpu_profiled(&[t], &cfg());
        let c = &p.tasklets[0];
        assert_eq!(c.get(CounterId::TaskletIssue), 20);
        // 19 inter-instruction gaps of (11 - 1) revolver cycles each.
        assert_eq!(c.get(CounterId::TaskletRevolver), 19 * 10);
        assert_eq!(c.get(CounterId::TaskletDispatch), 0);
        assert_eq!(c.get(CounterId::TaskletMutex), 0);
        assert_tasklet_partition(&p);
    }

    #[test]
    fn oversubscription_shows_up_as_dispatch_contention() {
        // 22 tasklets with back-to-back work: twice the revolver period, so
        // every thread spends about half its ready time losing the slot.
        let traces: Vec<TaskletTrace> = (0..22)
            .map(|_| {
                let mut t = TaskletTrace::new();
                t.compute(InstrClass::Arith, 50);
                t
            })
            .collect();
        let p = simulate_dpu_profiled(&traces, &cfg());
        assert!(p.counters.get(CounterId::TaskletDispatch) > 0);
        assert_tasklet_partition(&p);
    }

    #[test]
    fn dma_wait_splits_into_startup_and_transfer() {
        let mut t = TaskletTrace::new();
        t.dma(8192);
        t.compute(InstrClass::Arith, 1);
        let c = cfg();
        let p = simulate_dpu_profiled(&[t], &c);
        let tc = &p.tasklets[0];
        // Engine was free: no queue wait; startup window then streaming.
        assert_eq!(tc.get(CounterId::TaskletDmaQueue), 0);
        assert_eq!(tc.get(CounterId::TaskletDmaStartup), c.dma_startup_cycles as u64);
        // The engine starts the cycle after issue, so the blocked window is
        // exactly the transfer length.
        assert_eq!(
            tc.get(CounterId::TaskletDmaStartup) + tc.get(CounterId::TaskletDmaTransfer),
            c.dma_cycles(8192),
        );
        assert_eq!(tc.get(CounterId::DmaTransfers), 1);
        assert_eq!(tc.get(CounterId::DmaBytes), 8192);
        assert_tasklet_partition(&p);
    }

    #[test]
    fn concurrent_dmas_show_engine_queueing() {
        let mk = || {
            let mut t = TaskletTrace::new();
            t.dma(4096);
            t.compute(InstrClass::Arith, 1);
            t
        };
        let p = simulate_dpu_profiled(&[mk(), mk(), mk()], &cfg());
        // At least the last-granted tasklet queued behind the engine.
        assert!(p.counters.get(CounterId::TaskletDmaQueue) > 0);
        assert_eq!(p.counters.get(CounterId::DmaTransfers), 3);
        assert_tasklet_partition(&p);
    }

    #[test]
    fn contended_mutex_charges_backoff_to_mutex_wait() {
        let mk = || {
            let mut t = TaskletTrace::new();
            for _ in 0..10 {
                t.mutex_lock(0);
                t.compute(InstrClass::LoadStore, 6);
                t.mutex_unlock(0);
            }
            t
        };
        let p = simulate_dpu_profiled(&[mk(), mk(), mk()], &cfg());
        assert!(p.counters.get(CounterId::SpinRetries) > 0);
        assert!(p.counters.get(CounterId::TaskletMutex) > 0);
        assert!(p.counters.get(CounterId::MutexAcquires) >= 30);
        assert_tasklet_partition(&p);
    }

    #[test]
    fn barrier_parking_is_attributed_to_the_early_arrivals() {
        let mut fast = TaskletTrace::new();
        fast.compute(InstrClass::Arith, 1);
        fast.barrier();
        fast.compute(InstrClass::Arith, 1);
        let mut slow = TaskletTrace::new();
        slow.compute(InstrClass::Arith, 200);
        slow.barrier();
        slow.compute(InstrClass::Arith, 1);
        let p = simulate_dpu_profiled(&[fast, slow], &cfg());
        let fast_c = &p.tasklets[0];
        let slow_c = &p.tasklets[1];
        assert!(fast_c.get(CounterId::TaskletBarrier) > 100 * 11 / 2);
        assert_eq!(slow_c.get(CounterId::TaskletBarrier), 0);
        assert_eq!(p.counters.get(CounterId::BarrierCrossings), 2);
        assert_tasklet_partition(&p);
    }

    #[test]
    fn rf_hazard_cycles_reach_the_tasklet_counters() {
        let mut c = cfg();
        c.rf_hazard_rate = 1.0;
        let mut t = TaskletTrace::new();
        t.compute(InstrClass::Arith, 50);
        let p = simulate_dpu_profiled(&[t], &c);
        assert!(p.tasklets[0].get(CounterId::TaskletRf) > 0);
        assert_tasklet_partition(&p);
    }

    #[test]
    fn empty_tasklet_is_pure_tail() {
        let mut t = TaskletTrace::new();
        t.compute(InstrClass::Arith, 30);
        let p = simulate_dpu_profiled(&[t, TaskletTrace::new()], &cfg());
        let idle = &p.tasklets[1];
        assert_eq!(idle.get(CounterId::TaskletTail), p.report.total_cycles);
        assert_eq!(idle.get(CounterId::TaskletIssue), 0);
        assert_tasklet_partition(&p);
    }
}

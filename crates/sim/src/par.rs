//! Host-side parallel execution of independent simulation work.
//!
//! The simulator replays thousands of *independent* per-DPU traces; nothing
//! about the simulated machine couples them, so the host is free to fan the
//! replay out over OS threads. This module is the only threading primitive in
//! the workspace: a scoped fork/join pool built purely on
//! [`std::thread::scope`] (no external crates, per the offline-build policy).
//!
//! Threads are spawned per call and joined before the call returns — scoped
//! lifetimes make borrowing inputs by reference safe, and for simulation
//! workloads (micro- to milliseconds per DPU, thousands of DPUs) the spawn
//! cost is noise. Work is distributed dynamically: workers claim fixed-size
//! index chunks from a shared atomic counter, which load-balances the skewed
//! per-DPU costs that graph partitions produce.
//!
//! Determinism contract: [`par_map_indexed`] returns results **in input
//! order**, so any order-sensitive reduction (floating-point sums, `max`
//! tie-breaking) done by the caller over the returned `Vec` is bit-identical
//! for every thread count, including 1. Worker panics are re-raised on the
//! calling thread after all workers have been joined.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global thread-count configuration for the simulation pool.
///
/// Resolution order: an explicit [`SimThreads::set`] call wins; otherwise the
/// `ALPHA_PIM_THREADS` environment variable (a positive integer); otherwise
/// [`std::thread::available_parallelism`]. A value of `1` forces fully
/// sequential execution (no worker threads are spawned at all).
pub struct SimThreads;

/// 0 = not yet resolved; any other value is the effective thread count.
static SIM_THREADS: AtomicUsize = AtomicUsize::new(0);

impl SimThreads {
    /// The effective thread count, resolving and caching it on first use.
    pub fn get() -> usize {
        let cached = SIM_THREADS.load(Ordering::Relaxed);
        if cached != 0 {
            return cached;
        }
        let resolved = std::env::var("ALPHA_PIM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            });
        // First writer wins, so racing initializers agree on the answer.
        match SIM_THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => resolved,
            Err(previous) => previous,
        }
    }

    /// Overrides the thread count for the rest of the process (used by
    /// benchmarks to compare 1 vs N threads within one run). Clamped to at
    /// least 1.
    pub fn set(threads: usize) {
        SIM_THREADS.store(threads.max(1), Ordering::Relaxed);
    }
}

/// Convenience alias for [`SimThreads::get`].
pub fn sim_threads() -> usize {
    SimThreads::get()
}

/// Convenience alias for [`SimThreads::set`].
pub fn set_sim_threads(threads: usize) {
    SimThreads::set(threads)
}

/// Maps `f` over `items` on the simulation pool, returning results in input
/// order.
///
/// `f` receives `(index, &item)` and must be safe to call concurrently for
/// distinct indices. With one thread (or one item) this degenerates to a
/// plain sequential loop on the calling thread. If any worker panics, the
/// panic is propagated here after all workers finish.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = sim_threads().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // ~4 chunks per worker: small enough to balance skew, large enough to
    // keep counter contention negligible.
    let chunk = (items.len() / (threads * 4)).max(1);
    let next = AtomicUsize::new(0);
    let f = &f;
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            produced.push((i, f(i, item)));
                        }
                    }
                    produced
                })
            })
            .collect();
        let mut panic_payload = None;
        for worker in workers {
            match worker.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed by exactly one worker"))
        .collect()
}

/// Runs `f` over mutable work items on the simulation pool, summing the
/// per-item `u64` results (edge counts, bytes, ...).
///
/// Items are partitioned statically into contiguous runs, one per worker —
/// appropriate when items are themselves coarse (e.g. per-thread column
/// ranges of a baseline engine). Panics propagate like [`par_map_indexed`].
pub fn par_fold_mut<T, F>(items: &mut [T], f: F) -> u64
where
    T: Send,
    F: Fn(&mut T) -> u64 + Sync,
{
    let threads = sim_threads().min(items.len());
    if threads <= 1 {
        return items.iter_mut().map(&f).sum();
    }
    let run = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let workers: Vec<_> = items
            .chunks_mut(run)
            .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).sum::<u64>()))
            .collect();
        let mut total = 0u64;
        let mut panic_payload = None;
        for worker in workers {
            match worker.join() {
                Ok(sum) => total += sum,
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        total
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map_indexed(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map_indexed(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn fold_mut_sums_and_mutates() {
        let mut items: Vec<u64> = (0..257).collect();
        let total = par_fold_mut(&mut items, |x| {
            *x += 1;
            *x
        });
        assert_eq!(total, (1..=257).sum::<u64>());
        assert_eq!(items[0], 1);
        assert_eq!(items[256], 257);
    }
}

//! Per-tasklet event traces — the interface between kernels and the
//! pipeline simulator.
//!
//! Kernels in the core crate execute *functionally* in Rust while recording
//! what the equivalent DPU tasklet would do: blocks of instructions by
//! class, blocking DMA transfers, and synchronization operations. The
//! pipeline model (see [`crate::pipeline`]) then replays these traces to
//! produce cycle-accurate timing without re-deriving the computation.

use crate::instr::{InstrClass, InstrMix};

/// The recording interface shared by the cycle-replay and analytic paths.
///
/// Kernel builders are generic over a `Record` implementation: recording
/// into a [`TaskletTrace`] produces the event stream the pipeline replayer
/// consumes, while recording into
/// [`crate::analytic::TaskletStats`] accumulates the closed-form statistics
/// the analytic performance model predicts from — with no event emission.
/// Both recorders observe the *same* calls from the *same* functional
/// kernel code, which is what keeps result values bit-identical between
/// the two paths by construction.
pub trait Record {
    /// Records `count` instructions of `class`. Zero counts are ignored.
    fn compute(&mut self, class: InstrClass, count: u32);

    /// Records a blocking DMA transfer. Zero-byte transfers are ignored.
    fn dma(&mut self, bytes: u32);

    /// Records a streaming read of `total_bytes` in `chunk_bytes` chunks
    /// with `per_chunk_overhead` bookkeeping instructions per chunk.
    /// Implementations may replace the default chunk loop with a closed
    /// form as long as the recorded totals are identical.
    fn dma_stream(&mut self, total_bytes: u64, chunk_bytes: u32, per_chunk_overhead: u32) {
        assert!(chunk_bytes > 0, "chunk_bytes must be positive");
        let mut remaining = total_bytes;
        while remaining > 0 {
            let this = remaining.min(chunk_bytes as u64) as u32;
            self.dma(this);
            self.compute(InstrClass::Control, per_chunk_overhead);
            remaining -= this as u64;
        }
    }

    /// Records a mutex acquisition.
    fn mutex_lock(&mut self, id: u16);

    /// Records a mutex release.
    fn mutex_unlock(&mut self, id: u16);

    /// Records arrival at the all-tasklet barrier.
    fn barrier(&mut self);
}

/// One event in a tasklet's execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `count` back-to-back instructions of the same class.
    Compute {
        /// Instruction class.
        class: InstrClass,
        /// Number of instructions (> 0).
        count: u32,
    },
    /// A blocking MRAM↔WRAM DMA of `bytes` bytes. Issues one `Dma`
    /// instruction, then stalls the tasklet until the (shared, serialized)
    /// DMA engine finishes the transfer.
    Dma {
        /// Transfer size in bytes.
        bytes: u32,
    },
    /// Acquire the mutex `id` (one `Sync` instruction; blocks if held).
    MutexLock {
        /// Mutex identifier, local to the DPU.
        id: u16,
    },
    /// Release the mutex `id` (one `Sync` instruction).
    MutexUnlock {
        /// Mutex identifier, local to the DPU.
        id: u16,
    },
    /// Arrive at the all-tasklet barrier (one `Sync` instruction; blocks
    /// until every live tasklet arrives).
    Barrier,
}

/// The recorded execution of one tasklet.
///
/// Built through the recording methods, which coalesce consecutive compute
/// events of the same class to keep traces compact.
///
/// # Example
///
/// ```
/// use alpha_pim_sim::trace::TaskletTrace;
/// use alpha_pim_sim::instr::InstrClass;
///
/// let mut t = TaskletTrace::new();
/// t.dma(256);
/// t.compute(InstrClass::Arith, 8);
/// t.compute(InstrClass::Arith, 4); // coalesced with the previous block
/// t.barrier();
/// assert_eq!(t.events().len(), 3);
/// assert_eq!(t.instructions(), 1 + 12 + 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskletTrace {
    events: Vec<TraceEvent>,
}

impl TaskletTrace {
    /// An empty trace.
    pub fn new() -> Self {
        TaskletTrace::default()
    }

    /// Records `count` instructions of `class`. Zero counts are ignored.
    pub fn compute(&mut self, class: InstrClass, count: u32) {
        if count == 0 {
            return;
        }
        if let Some(TraceEvent::Compute { class: last, count: n }) = self.events.last_mut() {
            if *last == class {
                *n = n.saturating_add(count);
                return;
            }
        }
        self.events.push(TraceEvent::Compute { class, count });
    }

    /// Records a blocking DMA transfer. Zero-byte transfers are ignored.
    pub fn dma(&mut self, bytes: u32) {
        if bytes > 0 {
            self.events.push(TraceEvent::Dma { bytes });
        }
    }

    /// Records a streaming read of `total_bytes` performed in WRAM chunks
    /// of `chunk_bytes`, with `per_chunk_overhead` bookkeeping instructions
    /// per chunk — the coarse-grained DMA pattern of §4.1.3.
    pub fn dma_stream(&mut self, total_bytes: u64, chunk_bytes: u32, per_chunk_overhead: u32) {
        assert!(chunk_bytes > 0, "chunk_bytes must be positive");
        let mut remaining = total_bytes;
        while remaining > 0 {
            let this = remaining.min(chunk_bytes as u64) as u32;
            self.dma(this);
            self.compute(InstrClass::Control, per_chunk_overhead);
            remaining -= this as u64;
        }
    }

    /// Records a mutex acquisition.
    pub fn mutex_lock(&mut self, id: u16) {
        self.events.push(TraceEvent::MutexLock { id });
    }

    /// Records a mutex release.
    pub fn mutex_unlock(&mut self, id: u16) {
        self.events.push(TraceEvent::MutexUnlock { id });
    }

    /// Records arrival at the all-tasklet barrier.
    pub fn barrier(&mut self) {
        self.events.push(TraceEvent::Barrier);
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total instructions this trace will issue (compute + one per DMA,
    /// mutex op, and barrier).
    pub fn instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Compute { count, .. } => *count as u64,
                _ => 1,
            })
            .sum()
    }

    /// Total bytes moved by DMA events.
    pub fn dma_bytes(&self) -> u64 {
        self.events
            .iter()
            .map(|e| if let TraceEvent::Dma { bytes } = e { *bytes as u64 } else { 0 })
            .sum()
    }

    /// Instruction-mix histogram of this trace (exact, no simulation).
    pub fn instr_mix(&self) -> InstrMix {
        let mut mix = InstrMix::new();
        for e in &self.events {
            match e {
                TraceEvent::Compute { class, count } => mix.add(*class, *count as u64),
                TraceEvent::Dma { .. } => mix.add(InstrClass::Dma, 1),
                TraceEvent::MutexLock { .. }
                | TraceEvent::MutexUnlock { .. }
                | TraceEvent::Barrier => mix.add(InstrClass::Sync, 1),
            }
        }
        mix
    }
}

impl Record for TaskletTrace {
    fn compute(&mut self, class: InstrClass, count: u32) {
        TaskletTrace::compute(self, class, count);
    }

    fn dma(&mut self, bytes: u32) {
        TaskletTrace::dma(self, bytes);
    }

    fn dma_stream(&mut self, total_bytes: u64, chunk_bytes: u32, per_chunk_overhead: u32) {
        TaskletTrace::dma_stream(self, total_bytes, chunk_bytes, per_chunk_overhead);
    }

    fn mutex_lock(&mut self, id: u16) {
        TaskletTrace::mutex_lock(self, id);
    }

    fn mutex_unlock(&mut self, id: u16) {
        TaskletTrace::mutex_unlock(self, id);
    }

    fn barrier(&mut self) {
        TaskletTrace::barrier(self);
    }
}

/// A seeded open-loop arrival process over the model clock.
///
/// Generates Poisson-like query arrival times (exponential inter-arrival
/// gaps via inverse-CDF over a pure-hash uniform draw) measured in DPU
/// cycles. "Open-loop" means arrivals do not react to service progress:
/// the i-th arrival time is a pure function of `(seed, mean_gap_cycles,
/// i)`, so the process is bit-identical across runs and thread counts and
/// never consults a wall clock. The sustained-load service benchmark
/// replays these timestamps against its virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopArrivals {
    seed: u64,
    mean_gap_cycles: u64,
}

impl OpenLoopArrivals {
    /// A process with the given seed and mean inter-arrival gap in cycles.
    /// A zero mean degenerates to back-to-back arrivals (all gaps zero).
    pub fn new(seed: u64, mean_gap_cycles: u64) -> Self {
        OpenLoopArrivals { seed, mean_gap_cycles }
    }

    /// The mean inter-arrival gap in cycles.
    pub fn mean_gap_cycles(&self) -> u64 {
        self.mean_gap_cycles
    }

    /// The inter-arrival gap preceding arrival `i` (exponentially
    /// distributed with the configured mean; deterministic in `(seed, i)`).
    pub fn gap(&self, i: u64) -> u64 {
        if self.mean_gap_cycles == 0 {
            return 0;
        }
        // SplitMix64 finalizer over (seed, i) -> uniform u in [0, 1).
        let mut z = self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        // Inverse CDF of the exponential: -mean * ln(1 - u), u < 1.
        let gap = -(self.mean_gap_cycles as f64) * (1.0 - u).ln();
        // Cap the tail at 64 means so a single draw can never stall the
        // clock indefinitely (P(gap > 64 means) ≈ e^-64).
        gap.min(self.mean_gap_cycles as f64 * 64.0).ceil() as u64
    }

    /// The first `count` arrival times (cumulative gaps), non-decreasing.
    pub fn times(&self, count: usize) -> Vec<u64> {
        let mut t = 0u64;
        (0..count as u64)
            .map(|i| {
                t = t.saturating_add(self.gap(i));
                t
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_coalesces_same_class() {
        let mut t = TaskletTrace::new();
        t.compute(InstrClass::Arith, 3);
        t.compute(InstrClass::Arith, 5);
        t.compute(InstrClass::Control, 1);
        t.compute(InstrClass::Arith, 2);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.instructions(), 11);
    }

    #[test]
    fn zero_counts_and_bytes_are_ignored() {
        let mut t = TaskletTrace::new();
        t.compute(InstrClass::Arith, 0);
        t.dma(0);
        assert!(t.is_empty());
    }

    #[test]
    fn dma_stream_splits_into_chunks() {
        let mut t = TaskletTrace::new();
        t.dma_stream(1000, 256, 2);
        let dmas: Vec<u32> = t
            .events()
            .iter()
            .filter_map(|e| if let TraceEvent::Dma { bytes } = e { Some(*bytes) } else { None })
            .collect();
        assert_eq!(dmas, vec![256, 256, 256, 232]);
        assert_eq!(t.dma_bytes(), 1000);
    }

    #[test]
    fn instr_mix_counts_every_event_kind() {
        let mut t = TaskletTrace::new();
        t.compute(InstrClass::Arith, 4);
        t.dma(64);
        t.mutex_lock(0);
        t.mutex_unlock(0);
        t.barrier();
        let mix = t.instr_mix();
        assert_eq!(mix.count(InstrClass::Arith), 4);
        assert_eq!(mix.count(InstrClass::Dma), 1);
        assert_eq!(mix.count(InstrClass::Sync), 3);
        assert_eq!(mix.total(), t.instructions());
    }

    #[test]
    #[should_panic(expected = "chunk_bytes")]
    fn dma_stream_rejects_zero_chunk() {
        TaskletTrace::new().dma_stream(10, 0, 0);
    }

    #[test]
    fn arrivals_are_deterministic_and_monotone() {
        let a = OpenLoopArrivals::new(0xA11CE, 500);
        let t1 = a.times(10_000);
        let t2 = a.times(10_000);
        assert_eq!(t1, t2);
        assert!(t1.windows(2).all(|w| w[0] <= w[1]), "times must be non-decreasing");
        // Different seeds draw different processes.
        assert_ne!(t1, OpenLoopArrivals::new(0xB0B, 500).times(10_000));
    }

    #[test]
    fn arrival_gaps_average_near_the_mean() {
        let mean = 1_000u64;
        let a = OpenLoopArrivals::new(7, mean);
        let n = 50_000usize;
        let last = *a.times(n).last().expect("non-empty");
        let empirical = last as f64 / n as f64;
        let rel = (empirical - mean as f64).abs() / mean as f64;
        assert!(rel < 0.05, "empirical mean gap {empirical} vs {mean} (rel {rel})");
    }

    #[test]
    fn zero_mean_degenerates_to_back_to_back() {
        let a = OpenLoopArrivals::new(3, 0);
        assert!(a.times(100).iter().all(|&t| t == 0));
    }
}

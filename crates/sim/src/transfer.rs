//! CPU↔DPU transfer timing model (§2.3.1).
//!
//! The UPMEM SDK moves data between host memory and DPU MRAM banks through
//! the DDR4 bus via a transposition library; parallel transfers overlap
//! across ranks but share bus bandwidth. Three primitives cover what the
//! kernels need:
//!
//! * [`scatter`] — different payloads to different DPUs (parallel transfer;
//!   the SDK pads each DPU's slot to the largest payload in the batch);
//! * [`broadcast`] — the same payload to every DPU (no hardware multicast,
//!   so the bus carries `bytes × num_dpus`);
//! * [`gather`] — payloads from DPUs back to the host.

use crate::config::TransferConfig;
use crate::counters::{CounterId, CounterSet};

/// Effective aggregate bandwidth with `active_dpus` DPUs participating:
/// grows linearly until it saturates at the bus peak.
pub fn effective_bandwidth(cfg: &TransferConfig, active_dpus: u32) -> f64 {
    (cfg.per_dpu_bandwidth * active_dpus as f64).min(cfg.peak_bandwidth)
}

/// Seconds to scatter distinct per-DPU payloads in one parallel batch.
///
/// The SDK's parallel transfer moves the same number of bytes to every DPU
/// in a batch, so the batch is padded to the largest payload.
pub fn scatter(cfg: &TransferConfig, per_dpu_bytes: &[u64]) -> f64 {
    let active = per_dpu_bytes.iter().filter(|&&b| b > 0).count() as u32;
    if active == 0 {
        return 0.0;
    }
    let max = *per_dpu_bytes.iter().max().expect("non-empty payload list");
    let total = max * per_dpu_bytes.len() as u64;
    cfg.batch_overhead_s + total as f64 / effective_bandwidth(cfg, per_dpu_bytes.len() as u32)
}

/// Seconds to broadcast the same `bytes` to `num_dpus` DPUs.
pub fn broadcast(cfg: &TransferConfig, bytes: u64, num_dpus: u32) -> f64 {
    if bytes == 0 || num_dpus == 0 {
        return 0.0;
    }
    let total = bytes * num_dpus as u64;
    cfg.batch_overhead_s + total as f64 / effective_bandwidth(cfg, num_dpus)
}

/// Seconds to gather distinct per-DPU payloads back to the host in one
/// parallel batch (padded like [`scatter`]).
pub fn gather(cfg: &TransferConfig, per_dpu_bytes: &[u64]) -> f64 {
    scatter(cfg, per_dpu_bytes)
}

/// [`scatter`] that also records the bus bytes actually moved (after the
/// SDK's padding to the largest payload) and the batch into `counters`.
pub fn scatter_counted(
    cfg: &TransferConfig,
    per_dpu_bytes: &[u64],
    counters: &mut CounterSet,
) -> f64 {
    if let Some(bytes) = batch_bus_bytes(per_dpu_bytes) {
        counters.add(CounterId::XferScatterBytes, bytes);
        counters.add(CounterId::XferBatches, 1);
    }
    scatter(cfg, per_dpu_bytes)
}

/// [`broadcast`] that also records the bus bytes (`bytes × num_dpus`; no
/// hardware multicast) and the batch into `counters`.
pub fn broadcast_counted(
    cfg: &TransferConfig,
    bytes: u64,
    num_dpus: u32,
    counters: &mut CounterSet,
) -> f64 {
    if bytes > 0 && num_dpus > 0 {
        counters.add(CounterId::XferBroadcastBytes, bytes * num_dpus as u64);
        counters.add(CounterId::XferBatches, 1);
    }
    broadcast(cfg, bytes, num_dpus)
}

/// [`gather`] that also records the bus bytes and the batch into
/// `counters`.
pub fn gather_counted(
    cfg: &TransferConfig,
    per_dpu_bytes: &[u64],
    counters: &mut CounterSet,
) -> f64 {
    if let Some(bytes) = batch_bus_bytes(per_dpu_bytes) {
        counters.add(CounterId::XferGatherBytes, bytes);
        counters.add(CounterId::XferBatches, 1);
    }
    gather(cfg, per_dpu_bytes)
}

/// Seconds the serving engine saves by folding `live` queries' input-vector
/// loads for one superstep into a single parallel batch: the fixed batch
/// startup window is paid once instead of `live` times. Records the elided
/// batches into `counters`. Zero when fewer than two queries are live.
pub fn batched_startup_savings(cfg: &TransferConfig, live: u32, counters: &mut CounterSet) -> f64 {
    if live < 2 {
        return 0.0;
    }
    let elided = u64::from(live - 1);
    counters.add(CounterId::ServeBatchesSaved, elided);
    elided as f64 * cfg.batch_overhead_s
}

/// Bus seconds the serving engine saves by shipping one query's frontier in
/// compressed `(index, value)` form (`packed_bytes`) inside the shared
/// per-superstep batch instead of re-broadcasting the full dense vector
/// (`full_bytes`) to all `num_dpus` DPUs. Records the saved bus bytes into
/// `counters`. Zero when packing does not help (dense frontier) — the
/// engine then ships the dense vector exactly as the standalone run would.
pub fn packed_broadcast_savings(
    cfg: &TransferConfig,
    full_bytes: u64,
    packed_bytes: u64,
    num_dpus: u32,
    counters: &mut CounterSet,
) -> f64 {
    if num_dpus == 0 || packed_bytes >= full_bytes {
        return 0.0;
    }
    let saved_bus = (full_bytes - packed_bytes) * num_dpus as u64;
    counters.add(CounterId::ServeBroadcastSavedBytes, saved_bus);
    saved_bus as f64 / effective_bandwidth(cfg, num_dpus)
}

/// Extra bus seconds `retries` retransmissions of a timed-out batch cost:
/// each retry re-sends the whole padded batch. Backoff waits between
/// retries are charged separately by [`crate::resilience`].
pub fn retransmit_seconds(batch_seconds: f64, retries: u32) -> f64 {
    retries as f64 * batch_seconds
}

/// Bus bytes one padded parallel batch moves, or `None` for an empty batch
/// (which the SDK skips entirely).
fn batch_bus_bytes(per_dpu_bytes: &[u64]) -> Option<u64> {
    if per_dpu_bytes.iter().all(|&b| b == 0) {
        return None;
    }
    let max = *per_dpu_bytes.iter().max().expect("non-empty payload list");
    Some(max * per_dpu_bytes.len() as u64)
}

/// Seconds for a direct DPU-to-DPU vector exchange over the hypothetical
/// interconnect of §6.4's recommendations: every DPU ships its partial
/// vector to the peers that need it, links operating in parallel.
///
/// Returns `None` when the configuration has no interconnect (the real
/// machine), in which case exchanges must round-trip through the host.
pub fn inter_dpu_exchange(cfg: &TransferConfig, per_dpu_bytes: &[u64]) -> Option<f64> {
    let link = cfg.inter_dpu?;
    let max = per_dpu_bytes.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return Some(0.0);
    }
    Some(link.latency_s + max as f64 / link.link_bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TransferConfig {
        TransferConfig::default()
    }

    #[test]
    fn bandwidth_saturates_at_peak() {
        let c = cfg();
        assert!(effective_bandwidth(&c, 1) < c.peak_bandwidth);
        assert_eq!(effective_bandwidth(&c, 10_000), c.peak_bandwidth);
        assert!(effective_bandwidth(&c, 8) > effective_bandwidth(&c, 4));
    }

    #[test]
    fn broadcast_cost_scales_with_dpu_count() {
        let c = cfg();
        // Past saturation, doubling DPUs doubles bus traffic at fixed rate.
        let t1k = broadcast(&c, 1 << 20, 1024);
        let t2k = broadcast(&c, 1 << 20, 2048);
        assert!(t2k > 1.8 * t1k, "t1k={t1k} t2k={t2k}");
    }

    #[test]
    fn scatter_pads_to_largest_payload() {
        let c = cfg();
        let balanced = scatter(&c, &vec![1024u64; 64]);
        let mut skewed = vec![1024u64; 64];
        skewed[0] = 64 * 1024;
        let imbalanced = scatter(&c, &skewed);
        assert!(imbalanced > balanced);
    }

    #[test]
    fn empty_transfers_are_free() {
        let c = cfg();
        assert_eq!(scatter(&c, &[]), 0.0);
        assert_eq!(scatter(&c, &[0, 0, 0]), 0.0);
        assert_eq!(broadcast(&c, 0, 2048), 0.0);
        assert_eq!(broadcast(&c, 100, 0), 0.0);
    }

    #[test]
    fn gather_matches_scatter_model() {
        let c = cfg();
        let bytes = vec![4096u64; 128];
        assert_eq!(gather(&c, &bytes), scatter(&c, &bytes));
    }

    #[test]
    fn counted_variants_match_times_and_record_traffic() {
        let c = cfg();
        let mut k = CounterSet::new();
        let payloads = vec![1024u64, 4096, 0, 2048];
        assert_eq!(scatter_counted(&c, &payloads, &mut k), scatter(&c, &payloads));
        assert_eq!(broadcast_counted(&c, 512, 8, &mut k), broadcast(&c, 512, 8));
        assert_eq!(gather_counted(&c, &payloads, &mut k), gather(&c, &payloads));
        // Scatter/gather pad to the largest payload (4096 × 4 DPUs).
        assert_eq!(k.get(CounterId::XferScatterBytes), 4096 * 4);
        assert_eq!(k.get(CounterId::XferGatherBytes), 4096 * 4);
        assert_eq!(k.get(CounterId::XferBroadcastBytes), 512 * 8);
        assert_eq!(k.get(CounterId::XferBatches), 3);
    }

    #[test]
    fn counted_variants_skip_empty_batches() {
        let c = cfg();
        let mut k = CounterSet::new();
        scatter_counted(&c, &[], &mut k);
        scatter_counted(&c, &[0, 0], &mut k);
        broadcast_counted(&c, 0, 64, &mut k);
        gather_counted(&c, &[0], &mut k);
        assert!(k.is_empty());
    }

    #[test]
    fn broadcast_to_all_dpus_is_costlier_than_segment_scatter() {
        // The Fig 2 effect: loading a full vector to every DPU (1D) vs
        // scattering 1/D-th segments (2D).
        let c = cfg();
        let n_bytes = 1u64 << 20; // 1 MiB vector
        let dpus = 2048u32;
        let full = broadcast(&c, n_bytes, dpus);
        let seg = scatter(&c, &vec![n_bytes / dpus as u64; dpus as usize]);
        assert!(full > 50.0 * seg, "full={full} seg={seg}");
    }
}

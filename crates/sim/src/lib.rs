//! Cycle-level simulator of the UPMEM processing-in-memory system.
//!
//! The ALPHA-PIM paper runs its kernels on physical UPMEM DIMMs; this crate
//! is the substitute substrate: a discrete-event model of the UPMEM
//! architecture (§2.3 of the paper) detailed enough to reproduce the
//! paper's microarchitectural analysis (Figs 9–11) and phase breakdowns
//! (Figs 2, 5–8):
//!
//! * [`pipeline`] — one DPU's revolver pipeline: single-issue dispatch,
//!   the 11-cycle same-tasklet spacing constraint, blocking DMA through a
//!   serialized engine, mutexes, barriers, and even/odd register-file bank
//!   conflicts, with idle cycles attributed to memory / revolver / RF
//!   causes;
//! * [`counters`] — the observability counter registry: slot-level and
//!   per-tasklet cycle attribution, event counts, and host/transfer
//!   traffic, all under one stable taxonomy;
//! * [`trace`] — the per-tasklet event traces kernels record while
//!   executing functionally in Rust, behind the [`trace::Record`] trait;
//! * [`analytic`] — the closed-form fast path: O(1)-space
//!   [`analytic::TaskletStats`] recorders plus a four-bound makespan and
//!   counter predictor that skips cycle replay entirely
//!   (`SimFidelity::Analytic`);
//! * [`transfer`] — the CPU↔DPU scatter/broadcast/gather timing model;
//! * [`host`] — host-side merge and convergence-check timing;
//! * [`energy`] — average-power energy accounting for Table 4;
//! * [`faults`] / [`resilience`] — deterministic seed-driven fault
//!   injection (DPU loss, stragglers, MRAM ECC events, transfer timeouts)
//!   and the host-side recovery policy (bounded backoff retry, partition
//!   redistribution, graceful degradation);
//! * [`system`] — the [`PimSystem`] facade and capacity checks;
//! * [`report`] — per-DPU and kernel-level reports plus the
//!   Load/Kernel/Retrieve/Merge [`PhaseBreakdown`];
//! * [`par`] — the host-side scoped thread pool that fans independent
//!   per-DPU replays out over OS threads (`ALPHA_PIM_THREADS`); simulated
//!   time and every report field are bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use alpha_pim_sim::{PimConfig, PimSystem};
//! use alpha_pim_sim::instr::InstrClass;
//! use alpha_pim_sim::trace::TaskletTrace;
//!
//! # fn main() -> Result<(), String> {
//! let system = PimSystem::new(PimConfig::with_dpus(8))?;
//! let mut acc = system.accumulator();
//! for dpu in 0..8 {
//!     let traces: Vec<TaskletTrace> = (0..16)
//!         .map(|_| {
//!             let mut t = TaskletTrace::new();
//!             t.dma_stream(4096, 512, 2);
//!             t.compute(InstrClass::Arith, 256);
//!             t
//!         })
//!         .collect();
//!     acc.add(dpu, &traces);
//! }
//! let kernel = acc.finish();
//! assert!(kernel.seconds > 0.0);
//! assert!(kernel.breakdown.total() > 0);
//! # Ok(())
//! # }
//! ```

pub mod analytic;
pub mod config;
pub mod counters;
pub mod energy;
pub mod faults;
pub mod host;
pub mod instr;
pub mod par;
pub mod pipeline;
pub mod report;
pub mod resilience;
pub mod system;
pub mod trace;
pub mod transfer;

pub use analytic::{predict_dpu, SegmentStats, TaskletStats};
pub use config::{
    FaultPlan, HostConfig, InterDpuConfig, ObservabilityLevel, PimConfig, PipelineConfig,
    ResiliencePolicy, SimFidelity, TransferConfig,
};
pub use counters::{CounterId, CounterSet, NUM_COUNTERS};
pub use faults::{FaultEngine, FaultVerdict, HostCrashPlan};
pub use energy::EnergyModel;
pub use instr::{InstrClass, InstrMix};
pub use par::{par_map_indexed, set_sim_threads, sim_threads, SimThreads};
pub use report::{
    BatchReport, CycleBreakdown, DpuDetail, DpuEval, DpuProfile, DpuReport, EvalRecord,
    KernelAccumulator, KernelReport, PhaseBreakdown,
};
pub use resilience::{FaultSummary, RecoverySummary};
pub use system::PimSystem;
pub use trace::{OpenLoopArrivals, Record, TaskletTrace, TraceEvent};

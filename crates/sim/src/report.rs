//! Simulation reports: per-DPU cycle breakdowns, kernel-level aggregates,
//! the observability counter rollup with its JSON/CSV exporters, and the
//! Load/Kernel/Retrieve/Merge phase decomposition the paper's figures are
//! built from.


use crate::analytic::TaskletStats;
use crate::config::{PimConfig, SimFidelity};
use crate::counters::{CounterId, CounterSet};
use crate::faults::{FaultEngine, FaultVerdict};
use crate::instr::{InstrClass, InstrMix};
use crate::pipeline::{estimate_cycles, simulate_dpu_profiled};
use crate::trace::{Record, TaskletTrace};

/// A recorder kind the accumulator knows how to evaluate — the tie between
/// a [`Record`] implementation and its evaluation path. Kernel code generic
/// over `R: EvalRecord` runs identical value math under either fidelity:
/// [`TaskletTrace`] records replayable events and evaluates through the
/// discrete-event pipeline, while [`TaskletStats`] records closed-form
/// statistics and evaluates through the analytic predictor with no replay.
pub trait EvalRecord: Record + Clone + Send + Sync {
    /// A fresh recorder for a kernel launched under `cfg`.
    fn fresh(cfg: &PimConfig) -> Self;

    /// Evaluates one DPU's recorded tasklets against `acc`.
    fn evaluate(acc: &KernelAccumulator, dpu_id: u32, recs: &[Self]) -> DpuEval;
}

impl EvalRecord for TaskletTrace {
    fn fresh(_cfg: &PimConfig) -> Self {
        TaskletTrace::new()
    }

    fn evaluate(acc: &KernelAccumulator, dpu_id: u32, recs: &[Self]) -> DpuEval {
        acc.evaluate(dpu_id, recs)
    }
}

impl EvalRecord for TaskletStats {
    fn fresh(cfg: &PimConfig) -> Self {
        TaskletStats::new(&cfg.pipeline)
    }

    fn evaluate(acc: &KernelAccumulator, dpu_id: u32, recs: &[Self]) -> DpuEval {
        acc.evaluate_stats(dpu_id, recs)
    }
}

/// Cycle-level result of simulating one DPU (the Fig 9–11 metrics).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DpuReport {
    /// Makespan in cycles, including pipeline drain.
    pub total_cycles: u64,
    /// Instructions issued.
    pub issued_instructions: u64,
    /// Cycles in which an instruction was dispatched (== issued).
    pub active_cycles: u64,
    /// Idle cycles attributed to tasklets waiting on DMA (gray in Fig 9).
    pub idle_memory_cycles: u64,
    /// Idle cycles attributed to the revolver dispatch constraint,
    /// including sync-induced underutilization (light blue in Fig 9).
    pub idle_revolver_cycles: u64,
    /// Idle cycles attributed to even/odd register-file bank conflicts
    /// (dark blue in Fig 9).
    pub idle_rf_cycles: u64,
    /// Instruction histogram (Fig 11).
    pub instr_mix: InstrMix,
    /// Average number of unblocked tasklets per cycle (Fig 10).
    pub avg_active_threads: f64,
    /// Extra `Sync` instructions issued retrying contended mutexes.
    pub spin_retries: u64,
}

impl DpuReport {
    /// Fraction of cycles in which an instruction issued, in `[0, 1]`.
    pub fn issue_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.active_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// Full observability result of simulating one DPU: the slot-level report
/// plus the counter rollup and each tasklet's exact cycle attribution
/// (see [`crate::pipeline::simulate_dpu_profiled`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DpuProfile {
    /// The slot-level cycle report.
    pub report: DpuReport,
    /// Counter rollup over the whole DPU (tasklet counters summed, slot
    /// counters and budgets included).
    pub counters: CounterSet,
    /// One exact cycle attribution per tasklet, in tasklet order.
    pub tasklets: Vec<CounterSet>,
}

/// Per-DPU observability record retained in a [`KernelReport`] when the
/// configured [`crate::config::ObservabilityLevel`] asks for it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DpuDetail {
    /// Which DPU this record describes.
    pub dpu_id: u32,
    /// The DPU's makespan in cycles.
    pub total_cycles: u64,
    /// Instructions the DPU issued.
    pub issued_instructions: u64,
    /// The DPU's counter rollup.
    pub counters: CounterSet,
    /// Per-tasklet cycle attributions (empty below
    /// [`crate::config::ObservabilityLevel::PerTasklet`]).
    pub tasklets: Vec<CounterSet>,
}

/// Aggregated cycle breakdown across the DPUs that received detailed
/// simulation. All quantities are sums of per-DPU cycles, so fractions are
/// meaningful machine-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CycleBreakdown {
    /// Issue-active cycles.
    pub active: u64,
    /// Memory-stall idle cycles.
    pub memory: u64,
    /// Revolver-constraint idle cycles.
    pub revolver: u64,
    /// Register-file hazard idle cycles.
    pub rf: u64,
    /// The full counter-registry rollup over the detailed sample: slot and
    /// tasklet cycle attribution, event counts, and (once the kernel layer
    /// merges them in) host/transfer traffic.
    pub counters: CounterSet,
}

impl CycleBreakdown {
    /// Total cycles across all categories.
    pub fn total(&self) -> u64 {
        self.active + self.memory + self.revolver + self.rf
    }

    /// `(active, memory, revolver, rf)` as fractions of the total.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.active as f64 / t,
            self.memory as f64 / t,
            self.revolver as f64 / t,
            self.rf as f64 / t,
        )
    }

    /// The value of one registry counter in the rollup.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters.get(id)
    }

    /// `counter(id)` as a fraction of the tasklet cycle budget — the
    /// per-tasklet analogue of [`Self::fractions`], meaningful for the
    /// `tasklet.*` cycle categories.
    pub fn tasklet_fraction(&self, id: CounterId) -> f64 {
        let budget = self.counters.get(CounterId::TaskletBudget);
        if budget == 0 {
            0.0
        } else {
            self.counters.get(id) as f64 / budget as f64
        }
    }

    /// The rollup as a JSON object: the four slot-level fields plus a
    /// `"counters"` object keyed by registry label, in registry order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"active\":{},\"memory\":{},\"revolver\":{},\"rf\":{},\"counters\":",
            self.active, self.memory, self.revolver, self.rf
        ));
        out.push_str(&counters_json(&self.counters));
        out.push('}');
        out
    }

    /// CSV header matching [`Self::csv_row`]: the four slot-level fields
    /// followed by every registry counter label.
    pub fn csv_header() -> String {
        let mut cols = vec![
            "active".to_string(),
            "memory".to_string(),
            "revolver".to_string(),
            "rf".to_string(),
        ];
        cols.extend(CounterId::ALL.iter().map(|id| id.label().to_string()));
        cols.join(",")
    }

    /// One CSV row of this rollup's values, aligned with
    /// [`Self::csv_header`].
    pub fn csv_row(&self) -> String {
        let mut cols = vec![
            self.active.to_string(),
            self.memory.to_string(),
            self.revolver.to_string(),
            self.rf.to_string(),
        ];
        cols.extend(self.counters.iter().map(|(_, v)| v.to_string()));
        cols.join(",")
    }
}

/// A counter set as a JSON object keyed by registry label.
fn counters_json(c: &CounterSet) -> String {
    let mut out = String::from("{");
    for (i, (id, v)) in c.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", id.label()));
    }
    out.push('}');
    out
}

/// Aggregate result of simulating one kernel launch across every DPU.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelReport {
    /// DPUs that participated.
    pub num_dpus: u32,
    /// DPUs that received full discrete-event simulation.
    pub detailed_dpus: u32,
    /// Makespan: the slowest DPU's cycles (kernel time = max over DPUs,
    /// since the host waits for all of them).
    pub max_cycles: u64,
    /// Kernel wall-clock seconds (`max_cycles / frequency`).
    pub seconds: f64,
    /// Mean cycles per DPU.
    pub mean_cycles: f64,
    /// Sum of per-DPU cycle breakdowns over the detailed sample, with the
    /// counter-registry rollup.
    pub breakdown: CycleBreakdown,
    /// Exact instruction mix summed over every DPU.
    pub instr_mix: InstrMix,
    /// Mean of per-DPU average-active-thread counts (detailed sample).
    pub avg_active_threads: f64,
    /// Total instructions issued across every DPU.
    pub total_instructions: u64,
    /// Whether the launch completed gracefully degraded: at least one DPU
    /// was lost without redistribution, so its partition's results are
    /// missing from the output (see [`crate::faults`]).
    #[cfg_attr(feature = "serde", serde(default))]
    pub degraded: bool,
    /// Physical ids of DPUs whose outputs failed an ABFT checksum guard at
    /// merge time (silent corruption detected and corrected by the
    /// integrity layer). Sorted, deduplicated; empty on clean runs and
    /// whenever verification is disabled. The serving health scoreboard
    /// consumes this to build quarantine strikes.
    #[cfg_attr(feature = "serde", serde(default))]
    pub corrupted_dpus: Vec<u32>,
    /// Per-DPU observability records (empty below
    /// [`crate::config::ObservabilityLevel::PerDpu`]).
    #[cfg_attr(feature = "serde", serde(default))]
    pub dpu_details: Vec<DpuDetail>,
}

impl KernelReport {
    /// Achieved operations per second across the whole PIM system, taking
    /// `useful_ops` as the operation count of the kernel (used for the
    /// compute-utilization comparison of Table 4).
    pub fn achieved_ops_per_s(&self, useful_ops: u64) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            useful_ops as f64 / self.seconds
        }
    }

    /// The whole report as a single JSON object with deterministic key
    /// order, independent of the `serde` feature (counters keyed by
    /// registry label, per-DPU details in merge order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"num_dpus\":{},\"detailed_dpus\":{},\"max_cycles\":{},\"seconds\":{},\
             \"mean_cycles\":{},\"avg_active_threads\":{},\"total_instructions\":{},\
             \"degraded\":{},",
            self.num_dpus,
            self.detailed_dpus,
            self.max_cycles,
            json_f64(self.seconds),
            json_f64(self.mean_cycles),
            json_f64(self.avg_active_threads),
            self.total_instructions,
            self.degraded,
        ));
        out.push_str("\"corrupted_dpus\":[");
        for (i, d) in self.corrupted_dpus.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_string());
        }
        out.push_str("],");
        out.push_str("\"instr_mix\":{");
        for (i, class) in InstrClass::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", class.label(), self.instr_mix.count(*class)));
        }
        out.push_str("},\"breakdown\":");
        out.push_str(&self.breakdown.to_json());
        out.push_str(",\"dpu_details\":[");
        for (i, d) in self.dpu_details.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"dpu_id\":{},\"total_cycles\":{},\"issued_instructions\":{},\"counters\":{}",
                d.dpu_id,
                d.total_cycles,
                d.issued_instructions,
                counters_json(&d.counters),
            ));
            out.push_str(",\"tasklets\":[");
            for (j, t) in d.tasklets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&counters_json(t));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// The counter rollup as CSV: a header, one `aggregate` row, and one
    /// row per retained [`DpuDetail`].
    pub fn counters_csv(&self) -> String {
        let mut out = format!("dpu,total_cycles,{}\n", counter_label_row());
        out.push_str(&format!(
            "aggregate,{},{}\n",
            self.breakdown.counter(CounterId::DpuCycles),
            counter_value_row(&self.breakdown.counters),
        ));
        for d in &self.dpu_details {
            out.push_str(&format!(
                "{},{},{}\n",
                d.dpu_id,
                d.total_cycles,
                counter_value_row(&d.counters),
            ));
        }
        out
    }
}

fn counter_label_row() -> String {
    CounterId::ALL.iter().map(|id| id.label()).collect::<Vec<_>>().join(",")
}

fn counter_value_row(c: &CounterSet) -> String {
    c.iter().map(|(_, v)| v.to_string()).collect::<Vec<_>>().join(",")
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// One DPU's evaluated contribution to a [`KernelReport`], produced by
/// [`KernelAccumulator::evaluate`] and consumed by
/// [`KernelAccumulator::merge`]. Opaque: it exists so that evaluation (the
/// expensive, embarrassingly parallel part) can run on worker threads while
/// the order-sensitive reduction stays sequential.
#[derive(Debug, Clone)]
pub struct DpuEval {
    dpu_id: u32,
    mix: InstrMix,
    instructions: u64,
    est_cycles: u64,
    detailed: Option<DpuProfile>,
    /// Fault events (injected/detected/recovered/…) this DPU's verdict
    /// produced; merged into the rollup for every DPU, detailed or not.
    fault_events: CounterSet,
    /// The DPU was lost without redistribution: its partition is dropped
    /// and the kernel completes degraded.
    lost: bool,
}

impl DpuEval {
    /// Whether this DPU's partition was dropped by an unsurvivable loss.
    /// Kernels skip applying the functional results of dropped partitions.
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// Whether this DPU actually executed work (issued at least one
    /// instruction). Idle partitions cannot be fault sites, so integrity
    /// guards only admit active, non-lost partitions for corruption and
    /// verification.
    pub fn is_active(&self) -> bool {
        self.instructions > 0
    }
}

/// Charges a verdict's recovery cost to a detailed DPU profile, keeping
/// both zero-remainder partitions intact: the penalty extends the makespan
/// and lands in the `SlotFault` slice of the slot partition (itself split
/// across the `FAULT_CYCLES` buckets) and in the `TaskletFault` slice of
/// every tasklet's budget.
fn apply_fault_penalty(engine: &FaultEngine, verdict: FaultVerdict, profile: &mut DpuProfile) {
    let pen = engine.penalty_cycles(verdict, profile.report.total_cycles);
    if pen == 0 {
        return;
    }
    profile.report.total_cycles += pen;
    let n = profile.tasklets.len() as u64;
    profile.counters.add(CounterId::DpuCycles, pen);
    profile.counters.add(CounterId::SlotFault, pen);
    profile.counters.add(engine.penalty_bucket(verdict), pen);
    profile.counters.add(CounterId::TaskletFault, n * pen);
    profile.counters.add(CounterId::TaskletBudget, n * pen);
    for t in &mut profile.tasklets {
        t.add(CounterId::TaskletFault, pen);
    }
}

/// Incremental builder for a [`KernelReport`]: feed it one DPU's tasklet
/// traces at a time; it decides (per the configured fidelity) whether to
/// run the discrete-event pipeline model or the analytic estimate, and
/// self-calibrates the estimates against the detailed sample.
///
/// For parallel replay, use [`Self::add_batch`] (whole trace batches) or the
/// [`Self::evaluate`] / [`Self::merge`] pair (custom fan-out): both produce
/// reports bit-identical to a sequential [`Self::add`] loop.
#[derive(Debug)]
pub struct KernelAccumulator {
    cfg: PimConfig,
    faults: Option<FaultEngine>,
    degraded: bool,
    stride: u32,
    added: u32,
    detailed: u32,
    des_max: u64,
    des_sum: u128,
    est_max: u64,
    est_sum: u128,
    /// Sum of (des_cycles, est_cycles) pairs on detailed DPUs, for
    /// calibrating the estimate scale.
    calib_des: u128,
    calib_est: u128,
    breakdown: CycleBreakdown,
    mix: InstrMix,
    active_threads_sum: f64,
    total_instructions: u64,
    spin_retries: u64,
    details: Vec<DpuDetail>,
}

impl KernelAccumulator {
    /// Creates an accumulator for a launch over `cfg.num_dpus` DPUs.
    pub fn new(cfg: &PimConfig) -> Self {
        let stride = match cfg.fidelity {
            // Analytic: every DPU gets a (synthesized) profile, so the
            // calibration ratio is exactly 1 and no sampling happens.
            SimFidelity::Full | SimFidelity::Analytic => 1,
            SimFidelity::Sampled(k) => (cfg.num_dpus / k.max(1)).max(1),
        };
        let faults = FaultEngine::from_config(cfg);
        KernelAccumulator {
            cfg: cfg.clone(),
            faults,
            degraded: false,
            stride,
            added: 0,
            detailed: 0,
            des_max: 0,
            des_sum: 0,
            est_max: 0,
            est_sum: 0,
            calib_des: 0,
            calib_est: 0,
            breakdown: CycleBreakdown::default(),
            mix: InstrMix::new(),
            active_threads_sum: 0.0,
            total_instructions: 0,
            spin_retries: 0,
            details: Vec::new(),
        }
    }

    /// Evaluates one DPU's tasklet traces without touching accumulator
    /// state: instruction accounting, the analytic cycle estimate, and —
    /// when `dpu_id` falls on the fidelity sampling stride — the full
    /// discrete-event simulation with its observability profile.
    ///
    /// This is the pure (and therefore thread-safe) half of [`Self::add`];
    /// the returned [`DpuEval`] must be handed to [`Self::merge`] in DPU
    /// order so floating-point reductions stay bit-identical to a
    /// sequential run.
    pub fn evaluate(&self, dpu_id: u32, traces: &[TaskletTrace]) -> DpuEval {
        if traces.is_empty() {
            // Structurally empty partition (e.g. more DPUs than index
            // ranges): nothing was loaded and no kernel is launched, so no
            // cycles accrue, no events are recorded, and no fault verdict
            // is drawn — an idle DPU cannot be a fault site.
            return DpuEval {
                dpu_id,
                mix: InstrMix::new(),
                instructions: 0,
                est_cycles: 0,
                detailed: None,
                fault_events: CounterSet::new(),
                lost: false,
            };
        }
        let mut fault_events = CounterSet::new();
        let verdict = match &self.faults {
            Some(engine) => {
                let v = engine.verdict(dpu_id);
                engine.record_events(v, &mut fault_events);
                v
            }
            None => FaultVerdict::Healthy,
        };
        if verdict.is_dropped() {
            // The partition is gone: no instructions retire and no cycles
            // accrue; only the loss survives, in the event ledger.
            return DpuEval {
                dpu_id,
                mix: InstrMix::new(),
                instructions: 0,
                est_cycles: 0,
                detailed: None,
                fault_events,
                lost: true,
            };
        }
        let mut mix = InstrMix::new();
        let mut instructions = 0u64;
        for t in traces {
            mix.merge(&t.instr_mix());
            instructions += t.instructions();
        }
        let mut est_cycles = estimate_cycles(traces, &self.cfg.pipeline);
        let mut detailed = dpu_id
            .is_multiple_of(self.stride)
            .then(|| simulate_dpu_profiled(traces, &self.cfg.pipeline));
        if let Some(engine) = &self.faults {
            est_cycles += engine.penalty_cycles(verdict, est_cycles);
            if let Some(profile) = detailed.as_mut() {
                apply_fault_penalty(engine, verdict, profile);
            }
        }
        DpuEval { dpu_id, mix, instructions, est_cycles, detailed, fault_events, lost: false }
    }

    /// The analytic-fidelity counterpart of [`Self::evaluate`]: evaluates
    /// one DPU from closed-form [`TaskletStats`] instead of event traces.
    /// No replay runs; the observability profile is synthesized by
    /// [`crate::analytic::predict_dpu`] for *every* DPU, and the estimate
    /// equals the prediction so the accumulator's self-calibration is the
    /// identity. Fault semantics (verdicts, penalties, drops) are identical
    /// to the replay path.
    pub fn evaluate_stats(&self, dpu_id: u32, stats: &[crate::analytic::TaskletStats]) -> DpuEval {
        if stats.is_empty() {
            return DpuEval {
                dpu_id,
                mix: InstrMix::new(),
                instructions: 0,
                est_cycles: 0,
                detailed: None,
                fault_events: CounterSet::new(),
                lost: false,
            };
        }
        let mut fault_events = CounterSet::new();
        let verdict = match &self.faults {
            Some(engine) => {
                let v = engine.verdict(dpu_id);
                engine.record_events(v, &mut fault_events);
                v
            }
            None => FaultVerdict::Healthy,
        };
        if verdict.is_dropped() {
            return DpuEval {
                dpu_id,
                mix: InstrMix::new(),
                instructions: 0,
                est_cycles: 0,
                detailed: None,
                fault_events,
                lost: true,
            };
        }
        let mut mix = InstrMix::new();
        let mut instructions = 0u64;
        for s in stats {
            mix.merge(&s.instr_mix());
            instructions += s.instructions();
        }
        let mut profile = crate::analytic::predict_dpu(stats, &self.cfg.pipeline);
        if let Some(engine) = &self.faults {
            apply_fault_penalty(engine, verdict, &mut profile);
        }
        let est_cycles = profile.report.total_cycles;
        DpuEval {
            dpu_id,
            mix,
            instructions,
            est_cycles,
            detailed: Some(profile),
            fault_events,
            lost: false,
        }
    }

    /// Evaluates one DPU's recorders of either kind via [`EvalRecord`].
    pub fn evaluate_records<R: EvalRecord>(&self, dpu_id: u32, recs: &[R]) -> DpuEval {
        R::evaluate(self, dpu_id, recs)
    }

    /// Folds one evaluated DPU into the aggregate. Order-dependent: callers
    /// replaying DPUs in parallel must merge in ascending DPU index.
    pub fn merge(&mut self, eval: DpuEval) {
        self.added += 1;
        self.degraded |= eval.lost;
        // Fault events accumulate for every DPU, detailed or not (they are
        // host-visible occurrences, not sampled cycle attribution). With no
        // plan the set is all-zero and this merge changes nothing.
        self.breakdown.counters.merge(&eval.fault_events);
        self.mix.merge(&eval.mix);
        self.total_instructions += eval.instructions;
        self.est_sum += eval.est_cycles as u128;
        self.est_max = self.est_max.max(eval.est_cycles);
        if let Some(profile) = eval.detailed {
            let report = profile.report;
            self.detailed += 1;
            self.des_max = self.des_max.max(report.total_cycles);
            self.des_sum += report.total_cycles as u128;
            self.calib_des += report.total_cycles as u128;
            self.calib_est += eval.est_cycles as u128;
            self.breakdown.active += report.active_cycles;
            self.breakdown.memory += report.idle_memory_cycles;
            self.breakdown.revolver += report.idle_revolver_cycles;
            self.breakdown.rf += report.idle_rf_cycles;
            self.breakdown.counters.merge(&profile.counters);
            self.active_threads_sum += report.avg_active_threads;
            self.spin_retries += report.spin_retries;
            if self.cfg.observability.records_per_dpu() {
                // A detailed DPU's record carries its own fault events so
                // the retained details stay self-consistent per DPU.
                let mut counters = profile.counters;
                counters.merge(&eval.fault_events);
                self.details.push(DpuDetail {
                    dpu_id: eval.dpu_id,
                    total_cycles: report.total_cycles,
                    issued_instructions: report.issued_instructions,
                    counters,
                    tasklets: if self.cfg.observability.records_per_tasklet() {
                        profile.tasklets
                    } else {
                        Vec::new()
                    },
                });
            }
        }
    }

    /// Adds one DPU's tasklet traces.
    pub fn add(&mut self, dpu_id: u32, traces: &[TaskletTrace]) {
        let eval = self.evaluate(dpu_id, traces);
        self.merge(eval);
    }

    /// Adds a batch of consecutive DPUs (`first_dpu`, `first_dpu + 1`, ...),
    /// evaluating them in parallel on the [`crate::par`] pool and merging in
    /// DPU order. The resulting report is bit-identical to calling
    /// [`Self::add`] sequentially for every DPU, at any thread count.
    pub fn add_batch(&mut self, first_dpu: u32, trace_sets: &[Vec<TaskletTrace>]) {
        let this: &Self = self;
        let evals = crate::par::par_map_indexed(trace_sets, |i, traces| {
            this.evaluate(first_dpu + i as u32, traces)
        });
        for eval in evals {
            self.merge(eval);
        }
    }

    /// Finishes the launch, producing the aggregate report.
    pub fn finish(self) -> KernelReport {
        let calibration = if self.calib_est == 0 {
            1.0
        } else {
            self.calib_des as f64 / self.calib_est as f64
        };
        // The estimate-scaled term covers DPUs that were never replayed;
        // when every DPU is detailed (Full and Analytic fidelity) the DES
        // maximum is exact and the heuristic must not override it.
        let max_cycles = if self.detailed == self.added {
            self.des_max
        } else {
            self.des_max.max((self.est_max as f64 * calibration) as u64)
        };
        let mean_cycles = if self.added == 0 {
            0.0
        } else {
            self.est_sum as f64 * calibration / self.added as f64
        };
        // Contended-mutex retries are observed only on detailed DPUs; scale
        // them to the full machine so Fig 11's sync share stays unbiased.
        let mut mix = self.mix;
        if self.detailed > 0 && self.spin_retries > 0 {
            let scaled =
                (self.spin_retries as f64 * self.added as f64 / self.detailed as f64) as u64;
            mix.add(crate::instr::InstrClass::Sync, scaled);
        }
        KernelReport {
            num_dpus: self.added,
            detailed_dpus: self.detailed,
            max_cycles,
            seconds: max_cycles as f64 * self.cfg.cycle_seconds(),
            mean_cycles,
            breakdown: self.breakdown,
            instr_mix: mix,
            avg_active_threads: if self.detailed == 0 {
                0.0
            } else {
                self.active_threads_sum / self.detailed as f64
            },
            total_instructions: self.total_instructions,
            degraded: self.degraded,
            // Filled in by the merge-time integrity guard
            // (`alpha_pim::kernel::integrity`), which is the only layer
            // that can see corrupted output values.
            corrupted_dpus: Vec::new(),
            dpu_details: self.details,
        }
    }
}

/// Aggregate record of one batch executed by the multi-query serving
/// engine: what the batch cost, what running each query alone would have
/// cost, and where the amortization came from.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatchReport {
    /// Queries executed in this batch.
    pub queries: u32,
    /// Supersteps the batch ran (the longest query's iteration count).
    pub supersteps: u32,
    /// Sum of the queries' standalone simulated seconds — what a
    /// sequential, one-query-at-a-time run of the same trace costs.
    pub seq_seconds: f64,
    /// Simulated makespan of the batched execution: the sequential cost
    /// minus the per-superstep startup and broadcast amortization, plus the
    /// host-side frontier packing charged to the first superstep.
    pub batched_seconds: f64,
    /// Bus bytes the shared per-superstep broadcast saved.
    pub broadcast_bytes_saved: u64,
    /// Host→DPU transfer batches elided by frontier packing.
    pub transfer_batches_saved: u64,
    /// Partition-cache hits across the batch's queries.
    pub cache_hits: u64,
    /// Partition-cache misses across the batch's queries.
    pub cache_misses: u64,
    /// Serving-layer counter rollup (`serve.*` plus the host packing work).
    pub counters: CounterSet,
    /// Whether any query in the batch completed degraded (a DPU lost
    /// without redistribution under the active fault plan).
    pub degraded: bool,
}

impl BatchReport {
    /// Seconds saved by batching, `seq_seconds - batched_seconds`.
    pub fn seconds_saved(&self) -> f64 {
        self.seq_seconds - self.batched_seconds
    }

    /// The report as a JSON object with deterministic key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"queries\":{},\"supersteps\":{},\"seq_seconds\":{},\"batched_seconds\":{},\
             \"broadcast_bytes_saved\":{},\"transfer_batches_saved\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"degraded\":{},\"counters\":",
            self.queries,
            self.supersteps,
            json_f64(self.seq_seconds),
            json_f64(self.batched_seconds),
            self.broadcast_bytes_saved,
            self.transfer_batches_saved,
            self.cache_hits,
            self.cache_misses,
            self.degraded,
        ));
        out.push_str(&counters_json(&self.counters));
        out.push('}');
        out
    }
}

/// Wall-clock seconds of one matrix–vector iteration, split into the four
/// phases of §4.1: load the input vector, run the kernel, retrieve
/// results, and merge on the host.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhaseBreakdown {
    /// CPU→DPU input-vector transfer seconds.
    pub load: f64,
    /// DPU kernel seconds (max over DPUs).
    pub kernel: f64,
    /// DPU→CPU output transfer seconds.
    pub retrieve: f64,
    /// Host-side merge (and convergence-check) seconds.
    pub merge: f64,
}

impl PhaseBreakdown {
    /// Sum of all four phases.
    pub fn total(&self) -> f64 {
        self.load + self.kernel + self.retrieve + self.merge
    }

    /// Element-wise accumulation (e.g. summing iterations of an app).
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        self.load += other.load;
        self.kernel += other.kernel;
        self.retrieve += other.retrieve;
        self.merge += other.merge;
    }

    /// Element-wise division by `other`'s total, for normalized plots.
    pub fn normalized_to(&self, reference_total: f64) -> PhaseBreakdown {
        if reference_total == 0.0 {
            return *self;
        }
        PhaseBreakdown {
            load: self.load / reference_total,
            kernel: self.kernel / reference_total,
            retrieve: self.retrieve / reference_total,
            merge: self.merge / reference_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ObservabilityLevel;
    use crate::instr::InstrClass;

    fn traces(work: u32) -> Vec<TaskletTrace> {
        (0..4)
            .map(|i| {
                let mut t = TaskletTrace::new();
                t.dma(256);
                t.compute(InstrClass::Arith, work + i * 3);
                t
            })
            .collect()
    }

    #[test]
    fn full_fidelity_details_every_dpu() {
        let cfg = PimConfig { num_dpus: 8, fidelity: SimFidelity::Full, ..Default::default() };
        let mut acc = KernelAccumulator::new(&cfg);
        for d in 0..8 {
            acc.add(d, &traces(50));
        }
        let r = acc.finish();
        assert_eq!(r.num_dpus, 8);
        assert_eq!(r.detailed_dpus, 8);
        assert!(r.max_cycles > 0);
        assert!(r.seconds > 0.0);
        // Default observability keeps no per-DPU records but still rolls
        // the counters up.
        assert!(r.dpu_details.is_empty());
        assert!(!r.breakdown.counters.is_empty());
    }

    #[test]
    fn sampled_fidelity_details_a_subset_but_keeps_exact_mix() {
        let full_cfg = PimConfig { num_dpus: 32, fidelity: SimFidelity::Full, ..Default::default() };
        let sampled_cfg =
            PimConfig { num_dpus: 32, fidelity: SimFidelity::Sampled(4), ..Default::default() };
        let mut full = KernelAccumulator::new(&full_cfg);
        let mut sampled = KernelAccumulator::new(&sampled_cfg);
        for d in 0..32 {
            let t = traces(40 + d);
            full.add(d, &t);
            sampled.add(d, &t);
        }
        let rf = full.finish();
        let rs = sampled.finish();
        assert!(rs.detailed_dpus < rf.detailed_dpus);
        assert_eq!(rs.instr_mix, rf.instr_mix);
        assert_eq!(rs.total_instructions, rf.total_instructions);
        // Calibrated makespan should track the full simulation closely.
        let ratio = rs.max_cycles as f64 / rf.max_cycles as f64;
        assert!(ratio > 0.7 && ratio < 1.4, "ratio {ratio}");
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = CycleBreakdown { active: 50, memory: 30, revolver: 15, rf: 5, ..Default::default() };
        let (a, m, r, f) = b.fractions();
        assert!((a + m + r + f - 1.0).abs() < 1e-12);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phase_breakdown_accumulates_and_normalizes() {
        let mut p = PhaseBreakdown { load: 1.0, kernel: 2.0, retrieve: 0.5, merge: 0.5 };
        p.accumulate(&PhaseBreakdown { load: 1.0, kernel: 0.0, retrieve: 0.0, merge: 0.0 });
        assert!((p.total() - 5.0).abs() < 1e-12);
        let n = p.normalized_to(10.0);
        assert!((n.total() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_finishes_cleanly() {
        let cfg = PimConfig::default();
        let r = KernelAccumulator::new(&cfg).finish();
        assert_eq!(r.num_dpus, 0);
        assert_eq!(r.max_cycles, 0);
        assert_eq!(r.avg_active_threads, 0.0);
        assert!(r.breakdown.counters.is_empty());
    }

    #[test]
    fn utilization_is_bounded() {
        let cfg = PimConfig { num_dpus: 1, fidelity: SimFidelity::Full, ..Default::default() };
        let mut acc = KernelAccumulator::new(&cfg);
        acc.add(0, &traces(100));
        let r = acc.finish();
        let util = r.breakdown.fractions().0;
        assert!(util > 0.0 && util <= 1.0);
    }

    #[test]
    fn observability_levels_gate_detail_retention() {
        let run = |level: ObservabilityLevel| {
            let cfg = PimConfig {
                num_dpus: 4,
                fidelity: SimFidelity::Full,
                observability: level,
                ..Default::default()
            };
            let mut acc = KernelAccumulator::new(&cfg);
            for d in 0..4 {
                acc.add(d, &traces(30));
            }
            acc.finish()
        };
        let agg = run(ObservabilityLevel::Aggregate);
        let per_dpu = run(ObservabilityLevel::PerDpu);
        let per_tasklet = run(ObservabilityLevel::PerTasklet);
        assert!(agg.dpu_details.is_empty());
        assert_eq!(per_dpu.dpu_details.len(), 4);
        assert!(per_dpu.dpu_details.iter().all(|d| d.tasklets.is_empty()));
        assert_eq!(per_tasklet.dpu_details.len(), 4);
        assert!(per_tasklet.dpu_details.iter().all(|d| d.tasklets.len() == 4));
        // The counter rollup itself is level-independent.
        assert_eq!(agg.breakdown, per_tasklet.breakdown);
        // Details arrive in DPU order.
        let ids: Vec<u32> = per_dpu.dpu_details.iter().map(|d| d.dpu_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rollup_counters_obey_the_slot_and_tasklet_invariants() {
        let cfg = PimConfig { num_dpus: 6, fidelity: SimFidelity::Full, ..Default::default() };
        let mut acc = KernelAccumulator::new(&cfg);
        for d in 0..6 {
            acc.add(d, &traces(25 + d));
        }
        let r = acc.finish();
        let c = &r.breakdown.counters;
        assert_eq!(c.sum(&CounterId::SLOT_CYCLES), c.get(CounterId::DpuCycles));
        assert_eq!(c.sum(&CounterId::TASKLET_CYCLES), c.get(CounterId::TaskletBudget));
        // The legacy four-field breakdown and the slot counters agree.
        assert_eq!(r.breakdown.active, c.get(CounterId::SlotIssue));
        assert_eq!(r.breakdown.memory, c.get(CounterId::SlotMemory));
        assert_eq!(r.breakdown.revolver, c.get(CounterId::SlotRevolver));
        assert_eq!(r.breakdown.rf, c.get(CounterId::SlotRf));
    }

    #[test]
    fn json_export_is_well_formed_and_complete() {
        let cfg = PimConfig {
            num_dpus: 2,
            fidelity: SimFidelity::Full,
            observability: ObservabilityLevel::PerTasklet,
            ..Default::default()
        };
        let mut acc = KernelAccumulator::new(&cfg);
        for d in 0..2 {
            acc.add(d, &traces(20));
        }
        let r = acc.finish();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in
            ["\"num_dpus\":2", "\"breakdown\":", "\"dpu_details\":[", "\"slot.issue\":", "\"tasklet.tail\":"]
        {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            json.matches("\"dpu_id\":").count(),
            2,
            "one detail object per DPU"
        );
        // Balanced braces/brackets (cheap well-formedness check; no string
        // values contain either character).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_export_aligns_header_and_rows() {
        let cfg = PimConfig {
            num_dpus: 3,
            fidelity: SimFidelity::Full,
            observability: ObservabilityLevel::PerDpu,
            ..Default::default()
        };
        let mut acc = KernelAccumulator::new(&cfg);
        for d in 0..3 {
            acc.add(d, &traces(15));
        }
        let r = acc.finish();
        let csv = r.counters_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 1 + 3, "header + aggregate + per-DPU rows");
        let width = lines[0].split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), width, "ragged row: {line}");
        }
        assert!(lines[1].starts_with("aggregate,"));
        // Breakdown-level CSV helpers align too.
        assert_eq!(
            CycleBreakdown::csv_header().split(',').count(),
            r.breakdown.csv_row().split(',').count(),
        );
    }
}

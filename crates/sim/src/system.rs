//! The system-level facade tying the DPU pipeline model, transfer model,
//! host model, and capacity accounting together.

use crate::config::PimConfig;
use crate::counters::{CounterId, CounterSet};
use crate::energy::EnergyModel;
use crate::faults::FaultEngine;
use crate::report::KernelAccumulator;
use crate::{host, resilience, transfer};

/// The transfer-traffic counters whose delta identifies a batch's payload
/// for the timeout draw.
const XFER_BYTES: [CounterId; 3] =
    [CounterId::XferScatterBytes, CounterId::XferBroadcastBytes, CounterId::XferGatherBytes];

/// A simulated UPMEM PIM system.
///
/// Kernels interact with it in three steps: check capacity and obtain a
/// [`KernelAccumulator`], feed per-DPU tasklet traces into the accumulator
/// while computing functionally in Rust, then combine the resulting kernel
/// time with the transfer and host models into a
/// [`crate::report::PhaseBreakdown`].
///
/// # Example
///
/// ```
/// use alpha_pim_sim::{PimConfig, PimSystem};
/// use alpha_pim_sim::trace::TaskletTrace;
/// use alpha_pim_sim::instr::InstrClass;
///
/// # fn main() -> Result<(), String> {
/// let system = PimSystem::new(PimConfig::with_dpus(4))?;
/// let mut acc = system.accumulator();
/// for dpu in 0..4 {
///     let mut t = TaskletTrace::new();
///     t.dma(256);
///     t.compute(InstrClass::Arith, 100 * (dpu + 1));
///     acc.add(dpu, &[t]);
/// }
/// let report = acc.finish();
/// assert!(report.seconds > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PimSystem {
    cfg: PimConfig,
    energy: EnergyModel,
    /// Seeded fault oracle, present only when the config carries a
    /// non-inert [`crate::config::FaultPlan`]. Built from the same pure
    /// derivation as [`KernelAccumulator`]'s engine, so system-level
    /// (transfer) and kernel-level (DPU) fault decisions agree.
    faults: Option<FaultEngine>,
}

impl PimSystem {
    /// Creates a system from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for structurally invalid
    /// configurations (zero DPUs, more than 24 tasklets, …).
    pub fn new(cfg: PimConfig) -> Result<Self, String> {
        cfg.validate()?;
        let faults = FaultEngine::from_config(&cfg);
        Ok(PimSystem { cfg, energy: EnergyModel::default(), faults })
    }

    /// The system configuration.
    pub fn config(&self) -> &PimConfig {
        &self.cfg
    }

    /// The energy model used for Table 4-style comparisons.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Replaces the energy model.
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        self.energy = model;
    }

    /// Number of DPUs available to kernels.
    pub fn num_dpus(&self) -> u32 {
        self.cfg.num_dpus
    }

    /// Starts accumulating one kernel launch.
    pub fn accumulator(&self) -> KernelAccumulator {
        KernelAccumulator::new(&self.cfg)
    }

    /// The active fault oracle, if the configuration injects faults.
    pub fn fault_engine(&self) -> Option<&FaultEngine> {
        self.faults.as_ref()
    }

    /// Whether `dpu`'s partition was lost without redistribution under the
    /// active fault plan. Kernels consult this after merging a DPU's
    /// evaluation and skip applying its functional results, completing the
    /// launch gracefully degraded.
    pub fn dpu_is_lost(&self, dpu: u32) -> bool {
        self.faults.as_ref().is_some_and(|e| e.dpu_is_dropped(dpu))
    }

    /// Applies the fault plan's transfer-timeout draw to one counted batch:
    /// `seq`/`bytes_before` snapshot the batch counter and traffic counters
    /// from before the batch, `base` is its clean duration. On a timeout
    /// the batch is retransmitted with exponential backoff and the retries
    /// are recorded in `counters`; returns the total duration.
    fn with_timeouts(
        &self,
        seq: u64,
        bytes_before: u64,
        base: f64,
        counters: &mut CounterSet,
    ) -> f64 {
        let Some(engine) = &self.faults else { return base };
        if counters.get(CounterId::XferBatches) == seq {
            // Empty batch: the SDK skips it entirely, nothing to time out.
            return base;
        }
        let bytes = counters.sum(&XFER_BYTES) - bytes_before;
        let retries = engine.transfer_timeout_retries(seq, bytes);
        if retries == 0 {
            return base;
        }
        resilience::record_timeout(counters, retries);
        base + resilience::timeout_penalty_seconds(
            engine.policy(),
            base,
            retries,
            self.cfg.cycle_seconds(),
        )
    }

    /// Seconds to scatter distinct payloads to the DPUs (CPU→DPU).
    pub fn scatter_time(&self, per_dpu_bytes: &[u64]) -> f64 {
        transfer::scatter(&self.cfg.transfer, per_dpu_bytes)
    }

    /// Seconds to broadcast the same payload to `num_dpus` DPUs.
    pub fn broadcast_time(&self, bytes: u64, num_dpus: u32) -> f64 {
        transfer::broadcast(&self.cfg.transfer, bytes, num_dpus)
    }

    /// Seconds to gather distinct payloads from the DPUs (DPU→CPU).
    pub fn gather_time(&self, per_dpu_bytes: &[u64]) -> f64 {
        transfer::gather(&self.cfg.transfer, per_dpu_bytes)
    }

    /// Seconds for the host to merge partial outputs.
    pub fn merge_time(&self, elements: u64, fan_in: u32, bytes_per_element: u32) -> f64 {
        host::merge_time(&self.cfg.host, elements, fan_in, bytes_per_element)
    }

    /// Seconds for the host to scan a vector once (convergence check).
    pub fn scan_time(&self, elements: u64, bytes_per_element: u32) -> f64 {
        host::scan_time(&self.cfg.host, elements, bytes_per_element)
    }

    /// [`Self::scatter_time`] that records bus traffic into `counters`,
    /// including timeout retransmissions under an active fault plan.
    pub fn scatter_time_counted(&self, per_dpu_bytes: &[u64], counters: &mut CounterSet) -> f64 {
        let (seq, bytes) = (counters.get(CounterId::XferBatches), counters.sum(&XFER_BYTES));
        let base = transfer::scatter_counted(&self.cfg.transfer, per_dpu_bytes, counters);
        self.with_timeouts(seq, bytes, base, counters)
    }

    /// [`Self::broadcast_time`] that records bus traffic into `counters`,
    /// including timeout retransmissions under an active fault plan.
    pub fn broadcast_time_counted(
        &self,
        bytes: u64,
        num_dpus: u32,
        counters: &mut CounterSet,
    ) -> f64 {
        let (seq, before) = (counters.get(CounterId::XferBatches), counters.sum(&XFER_BYTES));
        let base = transfer::broadcast_counted(&self.cfg.transfer, bytes, num_dpus, counters);
        self.with_timeouts(seq, before, base, counters)
    }

    /// [`Self::gather_time`] that records bus traffic into `counters`,
    /// including timeout retransmissions under an active fault plan.
    pub fn gather_time_counted(&self, per_dpu_bytes: &[u64], counters: &mut CounterSet) -> f64 {
        let (seq, bytes) = (counters.get(CounterId::XferBatches), counters.sum(&XFER_BYTES));
        let base = transfer::gather_counted(&self.cfg.transfer, per_dpu_bytes, counters);
        self.with_timeouts(seq, bytes, base, counters)
    }

    /// [`Self::merge_time`] that records host-side work into `counters`.
    pub fn merge_time_counted(
        &self,
        elements: u64,
        fan_in: u32,
        bytes_per_element: u32,
        counters: &mut CounterSet,
    ) -> f64 {
        host::merge_time_counted(&self.cfg.host, elements, fan_in, bytes_per_element, counters)
    }

    /// [`Self::scan_time`] that records host-side work into `counters`.
    pub fn scan_time_counted(
        &self,
        elements: u64,
        bytes_per_element: u32,
        counters: &mut CounterSet,
    ) -> f64 {
        host::scan_time_counted(&self.cfg.host, elements, bytes_per_element, counters)
    }

    /// Verifies that each DPU's resident data fits its 64 MB MRAM bank.
    ///
    /// # Errors
    ///
    /// Returns a description of the overflow.
    pub fn check_mram(&self, bytes_per_dpu: u64) -> Result<(), String> {
        if bytes_per_dpu > self.cfg.mram_bytes {
            return Err(format!(
                "partition needs {bytes_per_dpu} bytes of MRAM but a DPU bank holds {}",
                self.cfg.mram_bytes
            ));
        }
        Ok(())
    }

    /// The largest WRAM buffer each tasklet can own simultaneously,
    /// reserving an eighth of WRAM for stack and runtime.
    pub fn wram_budget_per_tasklet(&self) -> u32 {
        let usable = self.cfg.wram_bytes - self.cfg.wram_bytes / 8;
        usable / self.cfg.tasklets_per_dpu
    }

    /// Peak theoretical throughput in operations/second: every DPU issuing
    /// one instruction per cycle (the method of the SparseP peak analysis;
    /// the paper reports 4.66 GFLOPS for the full 2,560-DPU machine).
    pub fn peak_ops_per_s(&self) -> f64 {
        // Arithmetic throughput is bounded by the 11-stage revolver spacing
        // only below 11 tasklets; with the paper's 16+, issue rate is 1/cycle.
        // Useful FLOP rate is far lower for f32 (software emulation), which
        // the peak-performance method reflects with an emulation divisor.
        const FLOAT_EMULATION_DIVISOR: f64 = 154.0;
        self.cfg.num_dpus as f64 * self.cfg.dpu_frequency_hz as f64 / FLOAT_EMULATION_DIVISOR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_config() {
        assert!(PimSystem::new(PimConfig::default()).is_ok());
        assert!(PimSystem::new(PimConfig { num_dpus: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn mram_capacity_is_enforced() {
        let sys = PimSystem::new(PimConfig::default()).unwrap();
        assert!(sys.check_mram(64 << 20).is_ok());
        assert!(sys.check_mram((64 << 20) + 1).is_err());
    }

    #[test]
    fn wram_budget_divides_among_tasklets() {
        let sys = PimSystem::new(PimConfig::default()).unwrap();
        let budget = sys.wram_budget_per_tasklet();
        assert!(budget >= 2048, "budget {budget}");
        assert!(budget * sys.config().tasklets_per_dpu <= sys.config().wram_bytes);
    }

    #[test]
    fn peak_matches_paper_scale() {
        // Paper: 4.66 GFLOPS for 2,560 DPUs. Our model with 2,560 DPUs
        // should land in the same ballpark.
        let sys = PimSystem::new(PimConfig::with_dpus(2560)).unwrap();
        let peak = sys.peak_ops_per_s();
        assert!((peak - 4.66e9).abs() / 4.66e9 < 0.35, "peak {peak:e}");
    }

    #[test]
    fn transfer_and_host_helpers_delegate() {
        let sys = PimSystem::new(PimConfig::with_dpus(64)).unwrap();
        assert!(sys.broadcast_time(1 << 20, 64) > 0.0);
        assert!(sys.scatter_time(&vec![1024; 64]) > 0.0);
        assert!(sys.gather_time(&vec![1024; 64]) > 0.0);
        assert!(sys.merge_time(1 << 20, 4, 4) > 0.0);
        assert!(sys.scan_time(1 << 20, 4) > 0.0);
    }

    #[test]
    fn counted_helpers_agree_with_uncounted_ones() {
        use crate::counters::CounterId;
        let sys = PimSystem::new(PimConfig::with_dpus(64)).unwrap();
        let mut k = CounterSet::new();
        assert_eq!(
            sys.broadcast_time_counted(1 << 20, 64, &mut k),
            sys.broadcast_time(1 << 20, 64)
        );
        assert_eq!(
            sys.scatter_time_counted(&vec![1024; 64], &mut k),
            sys.scatter_time(&vec![1024; 64])
        );
        assert_eq!(
            sys.gather_time_counted(&vec![1024; 64], &mut k),
            sys.gather_time(&vec![1024; 64])
        );
        assert_eq!(sys.merge_time_counted(1 << 20, 4, 4, &mut k), sys.merge_time(1 << 20, 4, 4));
        assert_eq!(sys.scan_time_counted(1 << 20, 4, &mut k), sys.scan_time(1 << 20, 4));
        assert_eq!(k.get(CounterId::XferBatches), 3);
        assert_eq!(k.get(CounterId::HostReductions), 2);
    }
}

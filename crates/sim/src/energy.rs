//! Energy model for the three systems of Table 4.
//!
//! The paper measures UPMEM DIMM energy via the memory-controller counters,
//! CPU energy via Intel RAPL, and GPU energy via `nvidia-smi`. All three
//! reduce to average power × time; the constants below are fitted to the
//! paper's published (time, energy) pairs — e.g. BFS on `A302`:
//! 241.1 ms → 111.9 J for UPMEM-Total (≈ 465 W for 2,048 DPUs + host),
//! 541.1 ms → 17.3 J for the CPU (≈ 32 W package), 7.08 ms → 0.14 J for
//! the GPU (≈ 20 W board draw during these short kernels).


use crate::report::PhaseBreakdown;

/// Average-power energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyModel {
    /// Watts per active DPU (PIM chip share of DIMM power).
    pub dpu_power_w: f64,
    /// Host-package watts attributed to UPMEM runs (transfers + merge).
    pub upmem_host_power_w: f64,
    /// CPU baseline package power in watts.
    pub cpu_power_w: f64,
    /// GPU baseline board power in watts.
    pub gpu_power_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dpu_power_w: 0.217,
            upmem_host_power_w: 20.0,
            cpu_power_w: 32.0,
            gpu_power_w: 20.0,
        }
    }
}

impl EnergyModel {
    /// Joules for a full UPMEM run with the given phase times.
    ///
    /// DPUs draw power for the whole run (DRAM refresh + core); the host
    /// adds its share during the host-mediated phases.
    pub fn upmem_energy(&self, phases: &PhaseBreakdown, num_dpus: u32) -> f64 {
        let dimm = self.dpu_power_w * num_dpus as f64 * phases.total();
        let host =
            self.upmem_host_power_w * (phases.load + phases.retrieve + phases.merge);
        dimm + host
    }

    /// Joules for the kernel phase only (the paper's `UPMEM-Kernel` rows).
    pub fn upmem_kernel_energy(&self, kernel_seconds: f64, num_dpus: u32) -> f64 {
        self.dpu_power_w * num_dpus as f64 * kernel_seconds
    }

    /// Joules for a CPU baseline run of `seconds`.
    pub fn cpu_energy(&self, seconds: f64) -> f64 {
        self.cpu_power_w * seconds
    }

    /// Joules for a GPU baseline run of `seconds`.
    pub fn gpu_energy(&self, seconds: f64) -> f64 {
        self.gpu_power_w * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_energy_matches_paper_anchor() {
        // BFS on A302, UPMEM-Total: 241.1 ms, 2048 DPUs → ≈ 111.9 J.
        let m = EnergyModel::default();
        let phases = PhaseBreakdown {
            load: 0.080,
            kernel: 0.0766,
            retrieve: 0.060,
            merge: 0.0245,
        };
        let e = m.upmem_energy(&phases, 2048);
        assert!((e - 111.9).abs() / 111.9 < 0.08, "energy {e}");
    }

    #[test]
    fn cpu_energy_matches_paper_anchor() {
        // BFS on A302 CPU: 541.1 ms → 17.3 J.
        let m = EnergyModel::default();
        let e = m.cpu_energy(0.5411);
        assert!((e - 17.3).abs() / 17.3 < 0.05, "energy {e}");
    }

    #[test]
    fn gpu_energy_matches_paper_anchor() {
        // BFS on A302 GPU: 7.08 ms → 0.14 J.
        let m = EnergyModel::default();
        let e = m.gpu_energy(0.00708);
        assert!((e - 0.14).abs() / 0.14 < 0.05, "energy {e}");
    }

    #[test]
    fn kernel_energy_is_below_total_energy() {
        let m = EnergyModel::default();
        let phases =
            PhaseBreakdown { load: 0.01, kernel: 0.02, retrieve: 0.01, merge: 0.005 };
        assert!(m.upmem_kernel_energy(phases.kernel, 2048) < m.upmem_energy(&phases, 2048));
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let m = EnergyModel::default();
        assert!((m.cpu_energy(2.0) - 2.0 * m.cpu_energy(1.0)).abs() < 1e-12);
    }
}

//! Host-CPU model for the Merge phase and convergence checks.
//!
//! Column-wise and 2D partitionings leave partial results that the host
//! merges with an OpenMP-style parallel reduction (§4.1.1); iterative apps
//! additionally check convergence on the host every iteration (§6.3.1,
//! which the paper folds into Merge time). Both are bandwidth-bound
//! streaming reductions, modeled as bytes over aggregate host throughput.

use crate::config::HostConfig;

/// Seconds for the host to merge partial output vectors.
///
/// `elements` is the output vector length, `fan_in` the number of partial
/// results per element (e.g. the tile-grid column count for 2D
/// partitioning), and `bytes_per_element` the element size.
pub fn merge_time(cfg: &HostConfig, elements: u64, fan_in: u32, bytes_per_element: u32) -> f64 {
    if elements == 0 || fan_in == 0 {
        return 0.0;
    }
    let bytes = elements * fan_in as u64 * bytes_per_element as u64;
    cfg.reduce_overhead_s + bytes as f64 / aggregate_bandwidth(cfg)
}

/// Seconds for the host to scan a vector of `elements` entries once (the
/// per-iteration convergence / frontier-emptiness check).
pub fn scan_time(cfg: &HostConfig, elements: u64, bytes_per_element: u32) -> f64 {
    if elements == 0 {
        return 0.0;
    }
    cfg.reduce_overhead_s + (elements * bytes_per_element as u64) as f64 / aggregate_bandwidth(cfg)
}

/// The host's aggregate merge throughput in bytes/second.
pub fn aggregate_bandwidth(cfg: &HostConfig) -> f64 {
    cfg.merge_bytes_per_s_per_thread * cfg.threads as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HostConfig {
        HostConfig::default()
    }

    #[test]
    fn merge_scales_with_fan_in() {
        let c = cfg();
        let one = merge_time(&c, 1 << 20, 1, 4);
        let thirty_two = merge_time(&c, 1 << 20, 32, 4);
        assert!(thirty_two > 20.0 * one, "one={one} thirty_two={thirty_two}");
    }

    #[test]
    fn empty_merge_is_free() {
        let c = cfg();
        assert_eq!(merge_time(&c, 0, 8, 4), 0.0);
        assert_eq!(merge_time(&c, 100, 0, 4), 0.0);
        assert_eq!(scan_time(&c, 0, 4), 0.0);
    }

    #[test]
    fn more_threads_merge_faster() {
        let slow = HostConfig { threads: 1, ..cfg() };
        let fast = HostConfig { threads: 16, ..cfg() };
        assert!(merge_time(&fast, 1 << 22, 8, 4) < merge_time(&slow, 1 << 22, 8, 4));
    }

    #[test]
    fn scan_is_cheaper_than_merge_with_fan_in() {
        let c = cfg();
        assert!(scan_time(&c, 1 << 20, 4) < merge_time(&c, 1 << 20, 16, 4));
    }
}

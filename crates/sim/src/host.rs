//! Host-CPU model for the Merge phase and convergence checks.
//!
//! Column-wise and 2D partitionings leave partial results that the host
//! merges with an OpenMP-style parallel reduction (§4.1.1); iterative apps
//! additionally check convergence on the host every iteration (§6.3.1,
//! which the paper folds into Merge time). Both are bandwidth-bound
//! streaming reductions, modeled as bytes over aggregate host throughput.

use crate::config::HostConfig;
use crate::counters::{CounterId, CounterSet};

/// Seconds for the host to merge partial output vectors.
///
/// `elements` is the output vector length, `fan_in` the number of partial
/// results per element (e.g. the tile-grid column count for 2D
/// partitioning), and `bytes_per_element` the element size.
pub fn merge_time(cfg: &HostConfig, elements: u64, fan_in: u32, bytes_per_element: u32) -> f64 {
    if elements == 0 || fan_in == 0 {
        return 0.0;
    }
    let bytes = elements * fan_in as u64 * bytes_per_element as u64;
    cfg.reduce_overhead_s + bytes as f64 / aggregate_bandwidth(cfg)
}

/// Seconds for the host to scan a vector of `elements` entries once (the
/// per-iteration convergence / frontier-emptiness check).
pub fn scan_time(cfg: &HostConfig, elements: u64, bytes_per_element: u32) -> f64 {
    if elements == 0 {
        return 0.0;
    }
    cfg.reduce_overhead_s + (elements * bytes_per_element as u64) as f64 / aggregate_bandwidth(cfg)
}

/// [`merge_time`] that also records the bytes streamed and the reduction
/// into `counters`.
pub fn merge_time_counted(
    cfg: &HostConfig,
    elements: u64,
    fan_in: u32,
    bytes_per_element: u32,
    counters: &mut CounterSet,
) -> f64 {
    if elements > 0 && fan_in > 0 {
        counters.add(CounterId::HostMergeBytes, elements * fan_in as u64 * bytes_per_element as u64);
        counters.add(CounterId::HostReductions, 1);
    }
    merge_time(cfg, elements, fan_in, bytes_per_element)
}

/// [`scan_time`] that also records the bytes scanned and the reduction
/// into `counters`.
pub fn scan_time_counted(
    cfg: &HostConfig,
    elements: u64,
    bytes_per_element: u32,
    counters: &mut CounterSet,
) -> f64 {
    if elements > 0 {
        counters.add(CounterId::HostScanBytes, elements * bytes_per_element as u64);
        counters.add(CounterId::HostReductions, 1);
    }
    scan_time(cfg, elements, bytes_per_element)
}

/// Seconds for the host to pack a sparse frontier of `elements` entries
/// into the shared per-superstep transfer buffer of the serving engine —
/// one streaming compaction pass, same cost model as a scan.
pub fn pack_time(cfg: &HostConfig, elements: u64, bytes_per_element: u32) -> f64 {
    scan_time(cfg, elements, bytes_per_element)
}

/// [`pack_time`] that also records the bytes streamed and the reduction
/// into `counters`.
pub fn pack_time_counted(
    cfg: &HostConfig,
    elements: u64,
    bytes_per_element: u32,
    counters: &mut CounterSet,
) -> f64 {
    scan_time_counted(cfg, elements, bytes_per_element, counters)
}

/// The host's aggregate merge throughput in bytes/second.
pub fn aggregate_bandwidth(cfg: &HostConfig) -> f64 {
    cfg.merge_bytes_per_s_per_thread * cfg.threads as f64
}

/// Host-side fault detection: decodes the resilience ledger the runtime
/// accumulated in `counters`. Every fault the plan injects leaves a counter
/// trail, so detection is exact (delegates to [`crate::resilience`]).
pub fn detect_faults(counters: &CounterSet) -> crate::resilience::FaultSummary {
    crate::resilience::FaultSummary::from_counters(counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HostConfig {
        HostConfig::default()
    }

    #[test]
    fn merge_scales_with_fan_in() {
        let c = cfg();
        let one = merge_time(&c, 1 << 20, 1, 4);
        let thirty_two = merge_time(&c, 1 << 20, 32, 4);
        assert!(thirty_two > 20.0 * one, "one={one} thirty_two={thirty_two}");
    }

    #[test]
    fn empty_merge_is_free() {
        let c = cfg();
        assert_eq!(merge_time(&c, 0, 8, 4), 0.0);
        assert_eq!(merge_time(&c, 100, 0, 4), 0.0);
        assert_eq!(scan_time(&c, 0, 4), 0.0);
    }

    #[test]
    fn more_threads_merge_faster() {
        let slow = HostConfig { threads: 1, ..cfg() };
        let fast = HostConfig { threads: 16, ..cfg() };
        assert!(merge_time(&fast, 1 << 22, 8, 4) < merge_time(&slow, 1 << 22, 8, 4));
    }

    #[test]
    fn counted_variants_match_times_and_record_bytes() {
        let c = cfg();
        let mut k = CounterSet::new();
        assert_eq!(merge_time_counted(&c, 1000, 4, 8, &mut k), merge_time(&c, 1000, 4, 8));
        assert_eq!(scan_time_counted(&c, 500, 4, &mut k), scan_time(&c, 500, 4));
        assert_eq!(k.get(CounterId::HostMergeBytes), 1000 * 4 * 8);
        assert_eq!(k.get(CounterId::HostScanBytes), 500 * 4);
        assert_eq!(k.get(CounterId::HostReductions), 2);
        // Empty reductions record nothing.
        merge_time_counted(&c, 0, 4, 8, &mut k);
        scan_time_counted(&c, 0, 4, &mut k);
        assert_eq!(k.get(CounterId::HostReductions), 2);
    }

    #[test]
    fn scan_is_cheaper_than_merge_with_fan_in() {
        let c = cfg();
        assert!(scan_time(&c, 1 << 20, 4) < merge_time(&c, 1 << 20, 16, 4));
    }
}

//! Configuration of the simulated UPMEM system.
//!
//! Defaults model the machine used in the paper (§5.2): 20 PIM DIMMs with
//! 2,560 DPUs total (2,048 used by default, as in the paper's experiments),
//! each DPU a 350 MHz multithreaded in-order core with a 14-stage revolver
//! pipeline, a 64 MB MRAM bank, 64 KB of WRAM, and 24 KB of IRAM (§2.3.2).
//! Timing constants are calibrated to published UPMEM/PrIM/PIMulator
//! measurements; see `DESIGN.md` for the calibration table.


/// Full configuration of a simulated UPMEM PIM system.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PimConfig {
    /// Number of DPUs allocated to kernels (paper default: 2,048).
    pub num_dpus: u32,
    /// Hardware threads (tasklets) per DPU, 1..=24 (paper kernels use 16).
    pub tasklets_per_dpu: u32,
    /// DPU clock frequency in Hz (UPMEM: 350 MHz).
    pub dpu_frequency_hz: u64,
    /// MRAM (DRAM bank) capacity per DPU in bytes (64 MB).
    pub mram_bytes: u64,
    /// WRAM (scratchpad) capacity per DPU in bytes (64 KB).
    pub wram_bytes: u32,
    /// IRAM (instruction memory) capacity per DPU in bytes (24 KB).
    pub iram_bytes: u32,
    /// Pipeline timing model.
    pub pipeline: PipelineConfig,
    /// CPU↔DPU transfer timing model.
    pub transfer: TransferConfig,
    /// Host-side (merge, convergence check) timing model.
    pub host: HostConfig,
    /// How many DPUs receive full discrete-event simulation.
    pub fidelity: SimFidelity,
    /// How much per-DPU / per-tasklet counter detail the kernel reports
    /// retain (aggregate rollups are always collected).
    #[cfg_attr(feature = "serde", serde(default))]
    pub observability: ObservabilityLevel,
    /// Deterministic fault-injection plan. `None` (the default) models a
    /// fully healthy machine and adds no work to the hot path.
    #[cfg_attr(feature = "serde", serde(default))]
    pub faults: Option<FaultPlan>,
    /// Logical→physical DPU remap used when part of the machine is
    /// quarantined: entry `i` is the physical DPU id behind logical DPU
    /// `i`. Empty (the default) is the identity map. Fault draws are keyed
    /// on *physical* ids, so a quarantined system built by
    /// [`PimConfig::excluding_dpus`] keeps every surviving DPU's seeded
    /// fate while kernels see a smaller, contiguous machine.
    #[cfg_attr(feature = "serde", serde(default))]
    pub dpu_remap: Vec<u32>,
}

impl Default for PimConfig {
    fn default() -> Self {
        PimConfig {
            num_dpus: 2048,
            tasklets_per_dpu: 16,
            dpu_frequency_hz: 350_000_000,
            mram_bytes: 64 * 1024 * 1024,
            wram_bytes: 64 * 1024,
            iram_bytes: 24 * 1024,
            pipeline: PipelineConfig::default(),
            transfer: TransferConfig::default(),
            host: HostConfig::default(),
            fidelity: SimFidelity::default(),
            observability: ObservabilityLevel::default(),
            faults: None,
            dpu_remap: Vec::new(),
        }
    }
}

impl PimConfig {
    /// A configuration with `num_dpus` DPUs and paper defaults elsewhere.
    pub fn with_dpus(num_dpus: u32) -> Self {
        PimConfig { num_dpus, ..PimConfig::default() }
    }

    /// Seconds per DPU cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.dpu_frequency_hz as f64
    }

    /// Validates structural limits (tasklet count, positive sizes).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_dpus == 0 {
            return Err("num_dpus must be positive".into());
        }
        if self.tasklets_per_dpu == 0 || self.tasklets_per_dpu > 24 {
            return Err(format!(
                "tasklets_per_dpu must be in 1..=24, got {}",
                self.tasklets_per_dpu
            ));
        }
        if self.dpu_frequency_hz == 0 {
            return Err("dpu_frequency_hz must be positive".into());
        }
        if !self.dpu_remap.is_empty() {
            if self.dpu_remap.len() != self.num_dpus as usize {
                return Err(format!(
                    "dpu_remap must cover every logical DPU: {} entries for {} DPUs",
                    self.dpu_remap.len(),
                    self.num_dpus
                ));
            }
            if self.dpu_remap.windows(2).any(|w| w[0] >= w[1]) {
                return Err("dpu_remap must be strictly increasing".into());
            }
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        Ok(())
    }

    /// The configuration of this machine with the given *physical* DPUs
    /// quarantined: kernels see a smaller contiguous machine whose
    /// [`PimConfig::dpu_remap`] routes fault draws back to the surviving
    /// physical ids (composing with any remap already in place). Returns
    /// `None` when no healthy DPU would remain — callers must degrade
    /// gracefully instead of constructing an empty system.
    pub fn excluding_dpus(&self, quarantined: &[u32]) -> Option<PimConfig> {
        let keep: Vec<u32> = (0..self.num_dpus)
            .map(|logical| {
                self.dpu_remap.get(logical as usize).copied().unwrap_or(logical)
            })
            .filter(|physical| !quarantined.contains(physical))
            .collect();
        if keep.is_empty() {
            return None;
        }
        let mut cfg = self.clone();
        cfg.num_dpus = keep.len() as u32;
        cfg.dpu_remap = keep;
        Some(cfg)
    }

    /// The physical DPU id behind logical DPU `dpu` under
    /// [`PimConfig::dpu_remap`] (identity when no remap is active).
    pub fn physical_dpu(&self, dpu: u32) -> u32 {
        self.dpu_remap.get(dpu as usize).copied().unwrap_or(dpu)
    }
}

/// A deterministic, seed-driven fault-injection plan (the resilience
/// ablation layer). Every fault decision is a pure hash of
/// `(seed, site, kind)` — SplitMix64-mixed like the graph generators — so
/// a plan reproduces the same faults at any host thread count, in any
/// replay order, across runs.
///
/// Rates are per-site probabilities: `dpu_loss_rate` / `straggler_rate` /
/// `bitflip_rate` are drawn once per DPU per launch (a lost rank stays
/// lost for every launch of the same system), `timeout_rate` once per
/// CPU↔DPU transfer batch. Per-DPU kinds are mutually exclusive with
/// precedence loss > bit-flip > straggler.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// Seed of the fault draws (independent of the graph seeds).
    pub seed: u64,
    /// Probability a DPU is lost outright (rank failure).
    pub dpu_loss_rate: f64,
    /// Probability a DPU runs slow by `straggler_multiplier`.
    pub straggler_rate: f64,
    /// Cycle multiplier applied to a straggler DPU's makespan (≥ 1).
    pub straggler_multiplier: f64,
    /// Probability a DPU's MRAM suffers a bit flip on DMA, surfaced as a
    /// detectable ECC event the host must scrub with retries.
    pub bitflip_rate: f64,
    /// Probability a CPU↔DPU transfer batch times out and is retransmitted.
    pub timeout_rate: f64,
    /// Probability a DPU's partition output is *silently* corrupted: no
    /// ECC event, no timeout, no heartbeat loss — the flipped value flows
    /// into the host merge unless the ABFT merge guard
    /// ([`ResiliencePolicy::verify_merges`]) catches it.
    #[cfg_attr(feature = "serde", serde(default))]
    pub silent_flip_rate: f64,
    /// How the host reacts to detected faults.
    pub policy: ResiliencePolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA_017,
            dpu_loss_rate: 0.0,
            straggler_rate: 0.0,
            straggler_multiplier: 1.5,
            bitflip_rate: 0.0,
            timeout_rate: 0.0,
            silent_flip_rate: 0.0,
            policy: ResiliencePolicy::default(),
        }
    }
}

impl FaultPlan {
    /// A plan injecting every fault kind at one shared `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            dpu_loss_rate: rate,
            straggler_rate: rate,
            bitflip_rate: rate,
            timeout_rate: rate,
            ..FaultPlan::default()
        }
    }

    /// A plan injecting *only* silent output corruption at `rate` — every
    /// detectable fault kind stays off, so any divergence from a clean run
    /// is attributable to the integrity layer alone.
    pub fn silent(seed: u64, rate: f64) -> Self {
        FaultPlan { seed, silent_flip_rate: rate, ..FaultPlan::default() }
    }

    /// Whether every rate is zero (the plan can never fire).
    pub fn is_inert(&self) -> bool {
        self.dpu_loss_rate == 0.0
            && self.straggler_rate == 0.0
            && self.bitflip_rate == 0.0
            && self.timeout_rate == 0.0
            && self.silent_flip_rate == 0.0
    }

    /// Validates rates and the straggler multiplier.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("dpu_loss_rate", self.dpu_loss_rate),
            ("straggler_rate", self.straggler_rate),
            ("bitflip_rate", self.bitflip_rate),
            ("timeout_rate", self.timeout_rate),
            ("silent_flip_rate", self.silent_flip_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if !self.straggler_multiplier.is_finite() || self.straggler_multiplier < 1.0 {
            return Err(format!(
                "straggler_multiplier must be ≥ 1, got {}",
                self.straggler_multiplier
            ));
        }
        Ok(())
    }
}

/// Host-side reaction to detected faults (the policy half of the
/// resilience layer; see `DESIGN.md` §10 for the state machine).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResiliencePolicy {
    /// Bounded-retry budget for recoverable faults (ECC scrubs, transfer
    /// retransmits). `0` disables retries, escalating ECC events to DPU
    /// loss.
    pub max_retries: u32,
    /// First backoff window in simulated DPU cycles; doubles per retry
    /// (exponential backoff).
    pub backoff_base_cycles: u64,
    /// Whether a dead DPU's row block is redistributed to healthy DPUs.
    /// When `false` (or when no healthy DPU remains), lost partitions are
    /// dropped and the kernel completes `Degraded`.
    pub redistribute: bool,
    /// Whether the host verifies per-partition ABFT checksums at merge
    /// time (linear row-sums for plus-times, order-independent frontier
    /// fingerprints for the tropical/boolean semirings). On a mismatch the
    /// offending partition is recomputed on a healthy DPU; with
    /// verification off, silent corruption escapes into merged results.
    /// Serde note: absent in serialized configs predating the integrity
    /// layer, where it deserializes to `false` (the old unverified
    /// behavior); fresh [`Default`] configs verify.
    #[cfg_attr(feature = "serde", serde(default))]
    pub verify_merges: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 3,
            backoff_base_cycles: 256,
            redistribute: true,
            verify_merges: true,
        }
    }
}

/// Revolver pipeline and DMA timing parameters (§2.3.2).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PipelineConfig {
    /// Minimum cycles between consecutive instructions of one tasklet — the
    /// "revolver" scheduling constraint (11 on UPMEM).
    pub revolver_period: u32,
    /// Pipeline depth (14 stages; drain cost at kernel end).
    pub pipeline_depth: u32,
    /// Fixed cycles to start one MRAM↔WRAM DMA transfer.
    pub dma_startup_cycles: u32,
    /// Additional DMA cycles per byte transferred (~0.5 ⇒ ≈ 630 MB/s
    /// sustained at 350 MHz, matching PrIM's measured MRAM bandwidth).
    pub dma_cycles_per_byte: f64,
    /// Extra issue delay when an instruction's operands collide in the
    /// even/odd register-file banks.
    pub rf_hazard_penalty: u32,
    /// Fraction of register-reading instructions that incur an even/odd
    /// bank conflict (deterministic pseudo-random selection).
    pub rf_hazard_rate: f64,
    /// Cycles a tasklet backs off before retrying a contended mutex
    /// acquire (each retry issues one extra `Sync` instruction).
    pub mutex_backoff_cycles: u32,
    /// What-if (§6.4 recommendation): non-blocking DMA lets the issuing
    /// tasklet keep computing while the transfer is in flight (upper-bound
    /// model — data dependencies are assumed prefetchable).
    #[cfg_attr(feature = "serde", serde(default))]
    pub non_blocking_dma: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            revolver_period: 11,
            pipeline_depth: 14,
            dma_startup_cycles: 88,
            dma_cycles_per_byte: 0.5,
            rf_hazard_penalty: 1,
            rf_hazard_rate: 0.08,
            mutex_backoff_cycles: 44,
            non_blocking_dma: false,
        }
    }
}

impl PipelineConfig {
    /// What-if (§6.4 recommendation): intra-thread forwarding for
    /// independent instructions shortens the revolver dispatch gap, as
    /// proposed by the PIMulator study the paper cites.
    pub fn with_forwarding(mut self, period: u32) -> Self {
        self.revolver_period = period.max(1);
        self
    }

    /// What-if (§6.4 recommendation): enables the non-blocking DMA model.
    pub fn with_non_blocking_dma(mut self) -> Self {
        self.non_blocking_dma = true;
        self
    }
}

impl PipelineConfig {
    /// Cycles consumed by one blocking DMA of `bytes` bytes.
    pub fn dma_cycles(&self, bytes: u32) -> u64 {
        self.dma_startup_cycles as u64 + (bytes as f64 * self.dma_cycles_per_byte).ceil() as u64
    }
}

/// CPU↔DPU transfer model (§2.3.1; UPMEM SDK parallel transfers).
///
/// The host writes each DPU's MRAM through the memory bus; parallel
/// transfers overlap across ranks but share bus bandwidth, so the effective
/// rate grows with the number of active DPUs until it saturates at
/// [`TransferConfig::peak_bandwidth`]. There is no hardware multicast:
/// broadcasting `b` bytes to `d` DPUs moves `b·d` bytes — which is exactly
/// why 1D row-wise partitioning pays so dearly for full-vector loads
/// (Fig 2) and why 2,048 DPUs can be load-bound (Fig 8).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransferConfig {
    /// Fixed per-batch overhead in seconds (driver + rank setup).
    pub batch_overhead_s: f64,
    /// Saturated aggregate bandwidth in bytes/second (PrIM measures
    /// ≈ 16.9 GB/s for parallel transfers across thousands of DPUs).
    pub peak_bandwidth: f64,
    /// Per-DPU contribution to aggregate bandwidth before saturation.
    pub per_dpu_bandwidth: f64,
    /// What-if (§6.4 recommendation): a direct inter-DPU interconnect that
    /// exchanges vectors without a host round-trip. `None` models the real
    /// machine (host-mediated only).
    #[cfg_attr(feature = "serde", serde(default))]
    pub inter_dpu: Option<InterDpuConfig>,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            batch_overhead_s: 20e-6,
            peak_bandwidth: 16.9e9,
            per_dpu_bandwidth: 0.30e9,
            inter_dpu: None,
        }
    }
}

/// Parameters of a hypothetical direct DPU-to-DPU interconnect (§6.4).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InterDpuConfig {
    /// Per-DPU link bandwidth in bytes/second.
    pub link_bandwidth: f64,
    /// Per-exchange startup latency in seconds.
    pub latency_s: f64,
}

impl Default for InterDpuConfig {
    fn default() -> Self {
        // A modest serial link per PIM chip, far below the DDR4 bus but
        // fully parallel across DPUs.
        InterDpuConfig { link_bandwidth: 1.0e9, latency_s: 2e-6 }
    }
}

/// Host CPU model for the Merge phase (parallel OpenMP-style merge on the
/// Xeon host, §4.1.1) and per-iteration convergence checks.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HostConfig {
    /// Merge throughput per host thread, bytes/second.
    pub merge_bytes_per_s_per_thread: f64,
    /// Host threads participating in merge (2× Xeon Silver 4110 ⇒ 16).
    pub threads: u32,
    /// Fixed overhead per host-side reduction in seconds.
    pub reduce_overhead_s: f64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            merge_bytes_per_s_per_thread: 1.2e9,
            threads: 16,
            reduce_overhead_s: 5e-6,
        }
    }
}

/// Trade-off between simulation accuracy and speed at the system level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SimFidelity {
    /// Discrete-event-simulate every DPU.
    Full,
    /// Discrete-event-simulate a stride sample of this many DPUs (always
    /// including the most heavily loaded one); estimate the rest
    /// analytically, self-calibrated against the sampled ratio.
    /// Instruction mixes are exact in both modes.
    Sampled(u32),
    /// No discrete-event simulation at all: kernels record closed-form
    /// per-tasklet statistics instead of event traces, and the analytic
    /// performance model (see [`crate::analytic`]) predicts every DPU's
    /// makespan and counter partition directly. Result values, traffic
    /// bytes, and discrete event counts stay exact; cycle attribution is
    /// a calibrated approximation (≤ 5 % makespan error on the catalog).
    Analytic,
}

impl Default for SimFidelity {
    fn default() -> Self {
        SimFidelity::Sampled(128)
    }
}

/// How much observability detail a kernel launch retains. The aggregate
/// counter rollup in [`crate::report::CycleBreakdown`] is always collected
/// on the detailed-simulation sample; the higher levels additionally keep
/// per-DPU (and per-tasklet) [`crate::report::DpuDetail`] records, which
/// cost memory proportional to the detailed sample size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ObservabilityLevel {
    /// Aggregate counters only (the default).
    #[default]
    Aggregate,
    /// Keep one counter rollup per detailed DPU.
    PerDpu,
    /// Keep per-DPU rollups plus every tasklet's cycle attribution.
    PerTasklet,
}

impl ObservabilityLevel {
    /// Whether per-DPU detail records are retained.
    pub fn records_per_dpu(self) -> bool {
        self >= ObservabilityLevel::PerDpu
    }

    /// Whether per-tasklet counter sets are retained.
    pub fn records_per_tasklet(self) -> bool {
        self >= ObservabilityLevel::PerTasklet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_hardware() {
        let cfg = PimConfig::default();
        assert_eq!(cfg.num_dpus, 2048);
        assert_eq!(cfg.pipeline.revolver_period, 11);
        assert_eq!(cfg.mram_bytes, 64 << 20);
        assert_eq!(cfg.wram_bytes, 64 << 10);
        assert_eq!(cfg.iram_bytes, 24 << 10);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_configs() {
        assert!(PimConfig { num_dpus: 0, ..Default::default() }.validate().is_err());
        assert!(PimConfig { tasklets_per_dpu: 25, ..Default::default() }.validate().is_err());
        assert!(PimConfig { tasklets_per_dpu: 0, ..Default::default() }.validate().is_err());
        assert!(PimConfig { dpu_frequency_hz: 0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn dma_cycles_scale_with_size() {
        let p = PipelineConfig::default();
        assert_eq!(p.dma_cycles(0), 88);
        assert_eq!(p.dma_cycles(8), 92);
        assert!(p.dma_cycles(2048) > p.dma_cycles(64));
    }

    #[test]
    fn cycle_seconds_inverts_frequency() {
        let cfg = PimConfig::default();
        assert!((cfg.cycle_seconds() - 1.0 / 350e6).abs() < 1e-18);
    }
}

//! Instruction classes and the instruction-mix histogram (Fig 11).
//!
//! The DPU is a 32-bit RISC core; the simulator classifies issued
//! instructions into the categories the paper's instruction-mix analysis
//! reports: arithmetic, scratchpad load/store, DMA, synchronization,
//! control, and register moves. Multi-instruction emulation sequences
//! (e.g. software floating-point multiply, §6.3.1) are expanded by the
//! kernel layer into the corresponding number of `Arith`/`LoadStore`
//! instructions before reaching the pipeline.


/// Category of one issued DPU instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum InstrClass {
    /// Integer ALU operations (add, sub, shift, compare, logic).
    Arith,
    /// WRAM loads and stores (single-cycle scratchpad accesses, §6.4.2).
    LoadStore,
    /// MRAM↔WRAM DMA launch instructions.
    Dma,
    /// Synchronization: mutex lock/unlock, barrier participation.
    Sync,
    /// Branches, jumps, loop control.
    Control,
    /// Register-to-register moves.
    Move,
}

impl InstrClass {
    /// All classes, in display order.
    pub const ALL: [InstrClass; 6] = [
        InstrClass::Arith,
        InstrClass::LoadStore,
        InstrClass::Dma,
        InstrClass::Sync,
        InstrClass::Control,
        InstrClass::Move,
    ];

    /// Stable index of this class within [`InstrClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            InstrClass::Arith => 0,
            InstrClass::LoadStore => 1,
            InstrClass::Dma => 2,
            InstrClass::Sync => 3,
            InstrClass::Control => 4,
            InstrClass::Move => 5,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            InstrClass::Arith => "arith",
            InstrClass::LoadStore => "load/store",
            InstrClass::Dma => "dma",
            InstrClass::Sync => "sync",
            InstrClass::Control => "control",
            InstrClass::Move => "move",
        }
    }

    /// Whether this class reads general-purpose register operands and is
    /// therefore exposed to even/odd register-file bank conflicts (§2.3.2).
    pub fn reads_registers(self) -> bool {
        matches!(self, InstrClass::Arith | InstrClass::LoadStore | InstrClass::Move)
    }
}

impl std::fmt::Display for InstrClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Histogram of issued instructions by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InstrMix {
    counts: [u64; 6],
}

impl InstrMix {
    /// An empty histogram.
    pub fn new() -> Self {
        InstrMix::default()
    }

    /// Adds `n` instructions of `class`.
    pub fn add(&mut self, class: InstrClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Count of instructions in `class`.
    pub fn count(&self, class: InstrClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total instructions across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of the total contributed by `class`, in `[0, 1]`.
    pub fn fraction(&self, class: InstrClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(class) as f64 / total as f64
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &InstrMix) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Iterates `(class, count)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (InstrClass, u64)> + '_ {
        InstrClass::ALL.iter().map(move |&c| (c, self.count(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in InstrClass::ALL {
            assert!(seen.insert(c.index()));
            assert_eq!(InstrClass::ALL[c.index()], c);
        }
    }

    #[test]
    fn mix_accumulates_and_fractions() {
        let mut mix = InstrMix::new();
        mix.add(InstrClass::Arith, 30);
        mix.add(InstrClass::Sync, 10);
        assert_eq!(mix.total(), 40);
        assert!((mix.fraction(InstrClass::Sync) - 0.25).abs() < 1e-12);
        assert_eq!(mix.fraction(InstrClass::Dma), 0.0);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = InstrMix::new();
        a.add(InstrClass::Control, 5);
        let mut b = InstrMix::new();
        b.add(InstrClass::Control, 7);
        b.add(InstrClass::Move, 1);
        a.merge(&b);
        assert_eq!(a.count(InstrClass::Control), 12);
        assert_eq!(a.count(InstrClass::Move), 1);
    }

    #[test]
    fn empty_mix_has_zero_fraction() {
        assert_eq!(InstrMix::new().fraction(InstrClass::Arith), 0.0);
    }

    #[test]
    fn register_reading_classes_are_flagged() {
        assert!(InstrClass::Arith.reads_registers());
        assert!(!InstrClass::Sync.reads_registers());
        assert!(!InstrClass::Dma.reads_registers());
    }
}

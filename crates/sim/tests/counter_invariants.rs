//! The cycle-accounting audit: for seeded random kernels, the per-tasklet
//! attribution must sum *exactly* to the DPU makespan (no cycle lost, none
//! double-counted), every counter must stay within its budget, and the
//! whole observability layer — per-DPU details, per-tasklet counter sets,
//! and the JSON/CSV exporters — must be bit-identical at every host thread
//! count, extending the PR 1 determinism guarantee to the new layer.

use alpha_pim_sim::instr::InstrClass;
use alpha_pim_sim::par::set_sim_threads;
use alpha_pim_sim::pipeline::{simulate_dpu, simulate_dpu_profiled};
use alpha_pim_sim::trace::TaskletTrace;
use alpha_pim_sim::{
    CounterId, KernelReport, ObservabilityLevel, PimConfig, PimSystem, PipelineConfig,
    SimFidelity,
};
use alpha_pim_sparse::gen::rng::SplitMix64;

/// One seeded random trace set exercising every event type the pipeline
/// models: compute blocks of each class, DMAs, balanced mutex critical
/// sections, and barriers.
fn random_traces(rng: &mut SplitMix64) -> Vec<TaskletTrace> {
    let tasklets = 1 + rng.usize_below(16);
    (0..tasklets)
        .map(|_| {
            let mut t = TaskletTrace::new();
            for _ in 0..rng.usize_below(10) {
                match rng.u32_below(6) {
                    0 => t.compute(InstrClass::Arith, 1 + rng.u32_below(150)),
                    1 => t.compute(InstrClass::LoadStore, 1 + rng.u32_below(60)),
                    2 => t.compute(InstrClass::Control, 1 + rng.u32_below(30)),
                    3 => t.dma(8 * (1 + rng.u32_below(400))),
                    4 => {
                        // Balanced critical section: contended locks retry,
                        // so an unpaired lock would spin forever.
                        let id = rng.u32_below(3) as u16;
                        t.mutex_lock(id);
                        t.compute(InstrClass::LoadStore, 1 + rng.u32_below(8));
                        t.mutex_unlock(id);
                    }
                    _ => t.barrier(),
                }
            }
            t
        })
        .collect()
}

/// The headline invariant, checked across 192 seeded random kernels: the
/// tasklet-level attribution partitions every tasklet's lifetime exactly,
/// the slot-level attribution partitions the issue slots exactly, and no
/// counter escapes its budget.
#[test]
fn attributed_cycles_sum_exactly_to_total_cycles() {
    let cfg = PipelineConfig::default();
    let mut rng = SplitMix64::new(0xA11A_C0DE);
    for case in 0..192u32 {
        let traces = random_traces(&mut rng);
        let p = simulate_dpu_profiled(&traces, &cfg);
        let total = p.report.total_cycles;
        assert_eq!(p.tasklets.len(), traces.len(), "case {case}");
        for (tid, t) in p.tasklets.iter().enumerate() {
            assert_eq!(
                t.sum(&CounterId::TASKLET_CYCLES),
                total,
                "case {case}: tasklet {tid} attribution does not cover the makespan",
            );
            for id in CounterId::TASKLET_CYCLES {
                assert!(
                    t.get(id) <= total,
                    "case {case}: tasklet {tid} counter {id} exceeds the makespan",
                );
            }
        }
        let c = &p.counters;
        assert_eq!(c.get(CounterId::DpuCycles), total, "case {case}");
        assert_eq!(
            c.sum(&CounterId::SLOT_CYCLES),
            total,
            "case {case}: slot attribution does not cover the makespan",
        );
        assert_eq!(
            c.sum(&CounterId::TASKLET_CYCLES),
            c.get(CounterId::TaskletBudget),
            "case {case}: tasklet rollup does not cover the budget",
        );
        assert_eq!(c.get(CounterId::TaskletBudget), traces.len() as u64 * total, "case {case}");
        for id in CounterId::SLOT_CYCLES {
            assert!(c.get(id) <= total, "case {case}: slot counter {id} exceeds the makespan");
        }
    }
}

/// Cross-model consistency on the same random corpus: the profiled
/// simulation and the plain one agree bit-for-bit, the slot-issue counter
/// matches the instruction count, and the event counters match the traces.
#[test]
fn profile_agrees_with_plain_simulation_and_traces() {
    let cfg = PipelineConfig::default();
    let mut rng = SplitMix64::new(0xBEEF_FACE);
    for case in 0..64u32 {
        let traces = random_traces(&mut rng);
        let p = simulate_dpu_profiled(&traces, &cfg);
        assert_eq!(p.report, simulate_dpu(&traces, &cfg), "case {case}");
        let c = &p.counters;
        assert_eq!(c.get(CounterId::SlotIssue), p.report.issued_instructions, "case {case}");
        assert_eq!(
            c.get(CounterId::TaskletIssue),
            p.report.issued_instructions,
            "case {case}: every issued instruction belongs to exactly one tasklet",
        );
        assert_eq!(c.get(CounterId::SpinRetries), p.report.spin_retries, "case {case}");
        let trace_dma_bytes: u64 = traces.iter().map(|t| t.dma_bytes()).sum();
        assert_eq!(c.get(CounterId::DmaBytes), trace_dma_bytes, "case {case}");
        let trace_barriers: u64 = traces
            .iter()
            .map(|t| {
                t.events()
                    .iter()
                    .filter(|e| matches!(e, alpha_pim_sim::TraceEvent::Barrier))
                    .count() as u64
            })
            .sum();
        assert_eq!(c.get(CounterId::BarrierCrossings), trace_barriers, "case {case}");
    }
}

fn replay(dpus: u32, sets: &[Vec<TaskletTrace>]) -> KernelReport {
    let sys = PimSystem::new(PimConfig {
        num_dpus: dpus,
        fidelity: SimFidelity::Sampled(16),
        observability: ObservabilityLevel::PerTasklet,
        ..Default::default()
    })
    .expect("valid config");
    let mut acc = sys.accumulator();
    acc.add_batch(0, sets);
    acc.finish()
}

/// The determinism gate for the observability layer: with per-tasklet
/// detail enabled, the entire `KernelReport` — counter rollup, per-DPU
/// details, per-tasklet sets, and the exporter strings — is bit-identical
/// at every host thread count.
#[test]
fn observability_is_bit_identical_across_thread_counts() {
    let dpus = 96;
    let mut rng = SplitMix64::new(0x0B5E_12AB);
    let sets: Vec<Vec<TaskletTrace>> = (0..dpus).map(|_| random_traces(&mut rng)).collect();
    set_sim_threads(1);
    let sequential = replay(dpus, &sets);
    assert!(!sequential.dpu_details.is_empty(), "PerTasklet must retain details");
    assert!(sequential.dpu_details.iter().all(|d| !d.tasklets.is_empty()));
    for threads in [2, 3, 8] {
        set_sim_threads(threads);
        let parallel = replay(dpus, &sets);
        assert_eq!(sequential, parallel, "report diverged at {threads} threads");
        assert_eq!(
            sequential.to_json(),
            parallel.to_json(),
            "JSON export diverged at {threads} threads"
        );
        assert_eq!(
            sequential.counters_csv(),
            parallel.counters_csv(),
            "CSV export diverged at {threads} threads"
        );
    }
    set_sim_threads(1);
}

/// Empty trace sets — structurally empty partitions, e.g. more DPUs than
/// index ranges — must be true no-ops: no cycles, no counters, no per-DPU
/// detail, and, even under an aggressive fault plan, no fault verdict (an
/// idle DPU cannot be a fault site). A launch interleaving empty sets with
/// real work therefore produces the same report whether the empty DPUs
/// exist or the fault plan targets them.
#[test]
fn empty_trace_sets_are_true_noops() {
    use alpha_pim_sim::{CounterSet, FaultPlan};
    let aggressive = FaultPlan {
        seed: 0x1D1E_FA17,
        dpu_loss_rate: 0.9,
        straggler_rate: 0.9,
        straggler_multiplier: 4.0,
        bitflip_rate: 0.9,
        timeout_rate: 0.9,
        ..Default::default()
    };
    let cfg = |faults| PimConfig {
        num_dpus: 8,
        fidelity: SimFidelity::Full,
        observability: ObservabilityLevel::PerTasklet,
        faults,
        ..Default::default()
    };

    // An isolated empty evaluation contributes nothing, faulty plan or not.
    let sys = PimSystem::new(cfg(Some(aggressive.clone()))).expect("valid config");
    let acc = sys.accumulator();
    for dpu in 0..8 {
        let eval = acc.evaluate(dpu, &[]);
        assert!(!eval.is_lost(), "idle DPU {dpu} drew a loss verdict");
    }

    // An all-empty launch under the aggressive plan is a zeroed,
    // non-degraded report: every counter 0, no details with cycles.
    let mut all_empty = sys.accumulator();
    all_empty.add_batch(0, &vec![Vec::new(); 8]);
    let r = all_empty.finish();
    assert!(!r.degraded, "empty partitions must not degrade the launch");
    assert_eq!(r.max_cycles, 0);
    assert_eq!(r.total_instructions, 0);
    assert_eq!(r.breakdown.counters, CounterSet::new(), "idle DPUs leaked counters");
    assert!(r.dpu_details.is_empty(), "idle DPUs must not retain details");

    // Interleaving empty sets with real work: the report matches the same
    // launch where the empty slots carry no fault plan at all, because the
    // plan never gets to touch them. (Non-empty DPUs sit at the same ids in
    // both runs, so their verdict draws are identical.)
    let mut rng = SplitMix64::new(0x1D1E_0B5E);
    let work: Vec<Vec<TaskletTrace>> = (0..8)
        .map(|d| if d % 2 == 0 { Vec::new() } else { random_traces(&mut rng) })
        .collect();
    let run = |sets: &[Vec<TaskletTrace>]| {
        let sys = PimSystem::new(cfg(Some(aggressive.clone()))).expect("valid config");
        let mut acc = sys.accumulator();
        acc.add_batch(0, sets);
        acc.finish()
    };
    let mixed = run(&work);
    // Dropping the empty slots' traces entirely (replacing them with empty
    // vectors again) is the identity — but the stronger check is that every
    // retained detail belongs to a DPU that had work.
    for d in &mixed.dpu_details {
        assert!(d.dpu_id % 2 == 1, "idle DPU {} produced a detail record", d.dpu_id);
        assert!(d.total_cycles > 0);
    }
    // And the empty slots contributed no fault events: re-running with the
    // plan's rates zeroed only for a hypothetical idle-only machine gives
    // the same ledger, i.e. every fault event traces back to a working DPU.
    let faultless_empties = {
        let sys = PimSystem::new(cfg(Some(aggressive))).expect("valid config");
        let mut acc = sys.accumulator();
        for (d, traces) in work.iter().enumerate() {
            if !traces.is_empty() {
                acc.add(d as u32, traces);
            } else {
                acc.add(d as u32, &[]);
            }
        }
        acc.finish()
    };
    assert_eq!(mixed, faultless_empties, "add vs add_batch diverged on empty sets");
    // Each working DPU draws exactly one verdict, so at most one fault can
    // be injected per working DPU. With 4 idle + 4 working DPUs under 90%
    // rates, any verdict drawn for an idle DPU would almost surely push the
    // ledger past this bound.
    let working = work.iter().filter(|t| !t.is_empty()).count() as u64;
    assert!(
        mixed.breakdown.counters.get(CounterId::FaultsInjected) <= working,
        "idle DPUs became fault sites: {} injections for {working} working DPUs",
        mixed.breakdown.counters.get(CounterId::FaultsInjected),
    );
}

/// The rollup in a kernel report obeys the same partition invariants as a
/// single DPU, scaled by the detailed sample size.
#[test]
fn kernel_rollup_preserves_the_partition_invariants() {
    let mut rng = SplitMix64::new(0xCAFE_D00D);
    let sets: Vec<Vec<TaskletTrace>> = (0..32).map(|_| random_traces(&mut rng)).collect();
    let sys = PimSystem::new(PimConfig {
        num_dpus: 32,
        fidelity: SimFidelity::Full,
        observability: ObservabilityLevel::PerDpu,
        ..Default::default()
    })
    .expect("valid config");
    let mut acc = sys.accumulator();
    acc.add_batch(0, &sets);
    let r = acc.finish();
    let c = &r.breakdown.counters;
    assert_eq!(c.sum(&CounterId::SLOT_CYCLES), c.get(CounterId::DpuCycles));
    assert_eq!(c.sum(&CounterId::TASKLET_CYCLES), c.get(CounterId::TaskletBudget));
    // Per-DPU details must themselves be internally consistent and sum to
    // the rollup.
    let mut resummed = alpha_pim_sim::CounterSet::new();
    for d in &r.dpu_details {
        assert_eq!(d.counters.sum(&CounterId::SLOT_CYCLES), d.total_cycles);
        resummed.merge(&d.counters);
    }
    assert_eq!(&resummed, c, "per-DPU details must sum to the aggregate rollup");
}

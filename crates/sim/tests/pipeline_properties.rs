//! Property-style tests of the revolver-pipeline simulator's invariants.
//!
//! Cases come from the in-tree seeded [`SplitMix64`] generator (≥64 per
//! property), so every run exercises the same frozen trace set.

use alpha_pim_sim::instr::InstrClass;
use alpha_pim_sim::pipeline::{estimate_cycles, simulate_dpu};
use alpha_pim_sim::trace::TaskletTrace;
use alpha_pim_sim::PipelineConfig;
use alpha_pim_sparse::gen::rng::SplitMix64;

const CASES: u64 = 64;

/// A random, well-formed trace: compute blocks, DMAs, and balanced mutex
/// sections (no barriers, which require cross-trace symmetry).
fn random_trace(rng: &mut SplitMix64) -> TaskletTrace {
    let classes =
        [InstrClass::Arith, InstrClass::LoadStore, InstrClass::Control, InstrClass::Move];
    let steps = rng.usize_below(24);
    let mut t = TaskletTrace::new();
    for _ in 0..steps {
        match rng.u32_below(3) {
            0 => t.compute(classes[rng.usize_below(4)], 1 + rng.u32_below(63)),
            1 => t.dma(1 + rng.u32_below(2047)),
            _ => {
                let id = rng.u32_below(3) as u16;
                t.mutex_lock(id);
                t.compute(InstrClass::LoadStore, 1 + rng.u32_below(7));
                t.mutex_unlock(id);
            }
        }
    }
    t
}

fn random_traces(rng: &mut SplitMix64) -> Vec<TaskletTrace> {
    let n = 1 + rng.usize_below(11);
    (0..n).map(|_| random_trace(rng)).collect()
}

fn cfg() -> PipelineConfig {
    PipelineConfig::default()
}

#[test]
fn cycles_decompose_exactly() {
    let mut rng = SplitMix64::new(0xD801);
    for _ in 0..CASES {
        let traces = random_traces(&mut rng);
        let r = simulate_dpu(&traces, &cfg());
        assert_eq!(
            r.total_cycles,
            r.active_cycles + r.idle_memory_cycles + r.idle_revolver_cycles + r.idle_rf_cycles,
        );
    }
}

#[test]
fn every_instruction_is_issued() {
    let mut rng = SplitMix64::new(0xD802);
    for _ in 0..CASES {
        let traces = random_traces(&mut rng);
        let r = simulate_dpu(&traces, &cfg());
        let expected: u64 = traces.iter().map(|t| t.instructions()).sum();
        // Contended mutexes add retry issues on top of the trace's own
        // instructions; both the issue count and the mix reflect them.
        assert_eq!(r.issued_instructions, expected + r.spin_retries);
        assert_eq!(r.instr_mix.total(), expected + r.spin_retries);
    }
}

#[test]
fn makespan_bounds_hold() {
    let mut rng = SplitMix64::new(0xD803);
    for _ in 0..CASES {
        let traces = random_traces(&mut rng);
        let c = cfg();
        let r = simulate_dpu(&traces, &c);
        // At most one issue per cycle.
        assert!(r.active_cycles <= r.total_cycles);
        // The slowest single thread is a lower bound (revolver spacing).
        let per_thread_min: u64 = traces
            .iter()
            .map(|t| t.instructions().saturating_sub(1) * c.revolver_period as u64)
            .max()
            .unwrap_or(0);
        assert!(r.total_cycles >= per_thread_min);
    }
}

#[test]
fn simulation_is_deterministic() {
    let mut rng = SplitMix64::new(0xD804);
    for _ in 0..CASES {
        let traces = random_traces(&mut rng);
        let a = simulate_dpu(&traces, &cfg());
        let b = simulate_dpu(&traces, &cfg());
        assert_eq!(a, b);
    }
}

#[test]
fn estimate_never_wildly_underestimates() {
    let mut rng = SplitMix64::new(0xD805);
    for _ in 0..CASES {
        let traces = random_traces(&mut rng);
        let c = cfg();
        let sim = simulate_dpu(&traces, &c).total_cycles;
        let est = estimate_cycles(&traces, &c);
        // The estimate is a structural bound: it must be within a constant
        // factor of the simulated makespan for well-formed traces.
        assert!(est as f64 >= sim as f64 * 0.2, "est {est} sim {sim}");
        assert!((est as f64) <= sim as f64 * 5.0 + 1000.0, "est {est} sim {sim}");
    }
}

#[test]
fn adding_a_tasklet_never_reduces_total_work_time_below_serial() {
    let mut rng = SplitMix64::new(0xD806);
    for _ in 0..CASES {
        let traces = random_traces(&mut rng);
        // Issuing the union of instructions serially (1/cycle) is a hard
        // lower bound regardless of tasklet count.
        let r = simulate_dpu(&traces, &cfg());
        let instrs: u64 = traces.iter().map(|t| t.instructions()).sum();
        assert!(r.total_cycles >= instrs);
    }
}

#[test]
fn avg_active_threads_is_bounded_by_tasklet_count() {
    let mut rng = SplitMix64::new(0xD807);
    for _ in 0..CASES {
        let traces = random_traces(&mut rng);
        let r = simulate_dpu(&traces, &cfg());
        assert!(r.avg_active_threads >= 0.0);
        assert!(r.avg_active_threads <= traces.len() as f64 + 1e-9);
    }
}

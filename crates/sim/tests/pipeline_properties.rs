//! Property-based tests of the revolver-pipeline simulator's invariants.

use alpha_pim_sim::instr::InstrClass;
use alpha_pim_sim::pipeline::{estimate_cycles, simulate_dpu};
use alpha_pim_sim::trace::TaskletTrace;
use alpha_pim_sim::PipelineConfig;
use proptest::prelude::*;

/// A random, well-formed trace: compute blocks, DMAs, and balanced mutex
/// sections (no barriers, which require cross-trace symmetry).
fn trace_strategy() -> impl Strategy<Value = TaskletTrace> {
    let step = prop_oneof![
        (0usize..4, 1u32..64).prop_map(|(c, n)| (0u8, c as u16, n)),
        (1u32..2048).prop_map(|b| (1u8, 0, b)),
        (0u16..3, 1u32..8).prop_map(|(id, n)| (2u8, id, n)),
    ];
    proptest::collection::vec(step, 0..24).prop_map(|steps| {
        let classes =
            [InstrClass::Arith, InstrClass::LoadStore, InstrClass::Control, InstrClass::Move];
        let mut t = TaskletTrace::new();
        for (kind, a, b) in steps {
            match kind {
                0 => t.compute(classes[a as usize], b),
                1 => t.dma(b),
                _ => {
                    t.mutex_lock(a);
                    t.compute(InstrClass::LoadStore, b);
                    t.mutex_unlock(a);
                }
            }
        }
        t
    })
}

fn traces_strategy() -> impl Strategy<Value = Vec<TaskletTrace>> {
    proptest::collection::vec(trace_strategy(), 1..12)
}

fn cfg() -> PipelineConfig {
    PipelineConfig::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cycles_decompose_exactly(traces in traces_strategy()) {
        let r = simulate_dpu(&traces, &cfg());
        prop_assert_eq!(
            r.total_cycles,
            r.active_cycles + r.idle_memory_cycles + r.idle_revolver_cycles + r.idle_rf_cycles,
        );
    }

    #[test]
    fn every_instruction_is_issued(traces in traces_strategy()) {
        let r = simulate_dpu(&traces, &cfg());
        let expected: u64 = traces.iter().map(|t| t.instructions()).sum();
        // Contended mutexes add retry issues on top of the trace's own
        // instructions; both the issue count and the mix reflect them.
        prop_assert_eq!(r.issued_instructions, expected + r.spin_retries);
        prop_assert_eq!(r.instr_mix.total(), expected + r.spin_retries);
    }

    #[test]
    fn makespan_bounds_hold(traces in traces_strategy()) {
        let c = cfg();
        let r = simulate_dpu(&traces, &c);
        // At most one issue per cycle.
        prop_assert!(r.active_cycles <= r.total_cycles);
        // The slowest single thread is a lower bound (revolver spacing).
        let per_thread_min: u64 = traces
            .iter()
            .map(|t| t.instructions().saturating_sub(1) * c.revolver_period as u64)
            .max()
            .unwrap_or(0);
        prop_assert!(r.total_cycles >= per_thread_min);
    }

    #[test]
    fn simulation_is_deterministic(traces in traces_strategy()) {
        let a = simulate_dpu(&traces, &cfg());
        let b = simulate_dpu(&traces, &cfg());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn estimate_never_wildly_underestimates(traces in traces_strategy()) {
        let c = cfg();
        let sim = simulate_dpu(&traces, &c).total_cycles;
        let est = estimate_cycles(&traces, &c);
        // The estimate is a structural bound: it must be within a constant
        // factor of the simulated makespan for well-formed traces.
        prop_assert!(est as f64 >= sim as f64 * 0.2, "est {est} sim {sim}");
        prop_assert!((est as f64) <= sim as f64 * 5.0 + 1000.0, "est {est} sim {sim}");
    }

    #[test]
    fn adding_a_tasklet_never_reduces_total_work_time_below_serial(
        traces in traces_strategy(),
    ) {
        // Issuing the union of instructions serially (1/cycle) is a hard
        // lower bound regardless of tasklet count.
        let r = simulate_dpu(&traces, &cfg());
        let instrs: u64 = traces.iter().map(|t| t.instructions()).sum();
        prop_assert!(r.total_cycles >= instrs);
    }

    #[test]
    fn avg_active_threads_is_bounded_by_tasklet_count(traces in traces_strategy()) {
        let r = simulate_dpu(&traces, &cfg());
        prop_assert!(r.avg_active_threads >= 0.0);
        prop_assert!(r.avg_active_threads <= traces.len() as f64 + 1e-9);
    }
}

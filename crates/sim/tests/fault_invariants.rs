//! The fault-accounting audit: under seeded chaos plans, every injected
//! fault must be detected and either recovered or charged as a loss, the
//! recovery cycles must extend the PR 2 zero-remainder cycle partitions
//! (never break them), a rate-zero plan must be byte-identical to no plan
//! at all, and the whole faulty replay must stay bit-identical at every
//! host thread count.

use alpha_pim_sim::instr::InstrClass;
use alpha_pim_sim::par::set_sim_threads;
use alpha_pim_sim::trace::TaskletTrace;
use alpha_pim_sim::{
    CounterId, CounterSet, FaultPlan, KernelReport, ObservabilityLevel, PimConfig, PimSystem,
    SimFidelity,
};
use alpha_pim_sparse::gen::rng::SplitMix64;

/// One seeded random trace set (same shape as the counter-invariant
/// corpus): compute blocks, DMAs, balanced mutexes, barriers.
fn random_traces(rng: &mut SplitMix64) -> Vec<TaskletTrace> {
    let tasklets = 1 + rng.usize_below(16);
    (0..tasklets)
        .map(|_| {
            let mut t = TaskletTrace::new();
            for _ in 0..rng.usize_below(10) {
                match rng.u32_below(6) {
                    0 => t.compute(InstrClass::Arith, 1 + rng.u32_below(150)),
                    1 => t.compute(InstrClass::LoadStore, 1 + rng.u32_below(60)),
                    2 => t.compute(InstrClass::Control, 1 + rng.u32_below(30)),
                    3 => t.dma(8 * (1 + rng.u32_below(400))),
                    4 => {
                        let id = rng.u32_below(3) as u16;
                        t.mutex_lock(id);
                        t.compute(InstrClass::LoadStore, 1 + rng.u32_below(8));
                        t.mutex_unlock(id);
                    }
                    _ => t.barrier(),
                }
            }
            t
        })
        .collect()
}

fn replay(dpus: u32, faults: Option<FaultPlan>, sets: &[Vec<TaskletTrace>]) -> KernelReport {
    let sys = PimSystem::new(PimConfig {
        num_dpus: dpus,
        fidelity: SimFidelity::Full,
        observability: ObservabilityLevel::PerTasklet,
        faults,
        ..Default::default()
    })
    .expect("valid config");
    let mut acc = sys.accumulator();
    acc.add_batch(0, sets);
    acc.finish()
}

/// Injected == detected, and every detected fault is either recovered or
/// charged as a loss — checked across a sweep of seeded plans, together
/// with the extended zero-remainder partitions: the slot counters (now
/// including `slot.fault`) still sum exactly to the DPU cycles, the fault
/// buckets sum exactly to `slot.fault`, and the tasklet counters (now
/// including `tasklet.fault`) still sum exactly to the budget.
#[test]
fn ledger_balances_and_partitions_stay_exact_under_seeded_chaos() {
    let mut rng = SplitMix64::new(0xFA_17AB);
    for case in 0..24u64 {
        let dpus = 8 + (case as u32 % 5) * 8;
        let sets: Vec<Vec<TaskletTrace>> = (0..dpus).map(|_| random_traces(&mut rng)).collect();
        let mut plan = FaultPlan::uniform(0x5EED ^ case, 0.02 + 0.03 * (case % 7) as f64);
        plan.policy.redistribute = case % 3 != 0;
        let r = replay(dpus, Some(plan), &sets);
        let c = &r.breakdown.counters;
        assert_eq!(
            c.get(CounterId::FaultsInjected),
            c.get(CounterId::FaultsDetected),
            "case {case}: detection must be exact",
        );
        assert_eq!(
            c.get(CounterId::FaultsDetected),
            c.get(CounterId::FaultsRecovered) + c.get(CounterId::FaultsLost),
            "case {case}: every detected fault is recovered or lost",
        );
        assert_eq!(
            r.degraded,
            c.get(CounterId::FaultsLost) > 0,
            "case {case}: degraded iff a partition was dropped",
        );
        assert!(
            c.get(CounterId::FaultRedistributions) <= c.get(CounterId::FaultsRecovered),
            "case {case}",
        );
        // The extended partitions remain zero-remainder.
        assert_eq!(
            c.sum(&CounterId::SLOT_CYCLES),
            c.get(CounterId::DpuCycles),
            "case {case}: slot partition has a remainder",
        );
        assert_eq!(
            c.sum(&CounterId::FAULT_CYCLES),
            c.get(CounterId::SlotFault),
            "case {case}: fault buckets must sum to the fault slice",
        );
        assert_eq!(
            c.sum(&CounterId::TASKLET_CYCLES),
            c.get(CounterId::TaskletBudget),
            "case {case}: tasklet partition has a remainder",
        );
        // Per-tasklet sets keep covering each surviving DPU's makespan.
        for d in &r.dpu_details {
            for t in &d.tasklets {
                assert_eq!(
                    t.sum(&CounterId::TASKLET_CYCLES),
                    d.total_cycles,
                    "case {case}: tasklet attribution lost the fault penalty",
                );
            }
        }
    }
}

/// A rate-zero plan is indistinguishable from no plan at all: the whole
/// report and both exporter strings are byte-identical.
#[test]
fn rate_zero_plan_is_byte_identical_to_no_plan() {
    let mut rng = SplitMix64::new(0x0FF0_FA17);
    let sets: Vec<Vec<TaskletTrace>> = (0..24).map(|_| random_traces(&mut rng)).collect();
    let clean = replay(24, None, &sets);
    let zeroed = replay(24, Some(FaultPlan::uniform(0xDEAD_BEEF, 0.0)), &sets);
    assert_eq!(clean, zeroed, "a rate-0 plan must be a perfect no-op");
    assert_eq!(clean.to_json(), zeroed.to_json());
    assert_eq!(clean.counters_csv(), zeroed.counters_csv());
    assert!(!clean.degraded);
}

/// Faulty replays stay bit-identical at every host thread count: fault
/// verdicts are pure hashes of (seed, site), so parallel evaluation cannot
/// perturb them.
#[test]
fn faulty_replay_is_bit_identical_across_thread_counts() {
    let dpus = 64;
    let mut rng = SplitMix64::new(0x0714_EAD5);
    let sets: Vec<Vec<TaskletTrace>> = (0..dpus).map(|_| random_traces(&mut rng)).collect();
    let plan = FaultPlan::uniform(0xC4A0_5111, 0.15);
    set_sim_threads(1);
    let sequential = replay(dpus, Some(plan.clone()), &sets);
    assert!(sequential.breakdown.counters.get(CounterId::FaultsInjected) > 0, "plan too tame");
    for threads in [2, 5, 8] {
        set_sim_threads(threads);
        let parallel = replay(dpus, Some(plan.clone()), &sets);
        assert_eq!(sequential, parallel, "faulty report diverged at {threads} threads");
        assert_eq!(sequential.to_json(), parallel.to_json());
    }
    set_sim_threads(1);
}

/// An unsurvivable plan (every DPU lost, no redistribution possible) drops
/// everything: the report is degraded, every loss is charged, and no
/// instruction retires.
#[test]
fn unsurvivable_plan_degrades_and_charges_every_loss() {
    let mut rng = SplitMix64::new(0xDE_AD00);
    let dpus = 12;
    let sets: Vec<Vec<TaskletTrace>> = (0..dpus).map(|_| random_traces(&mut rng)).collect();
    let plan = FaultPlan::uniform(1, 1.0);
    let r = replay(dpus, Some(plan), &sets);
    assert!(r.degraded);
    let c = &r.breakdown.counters;
    assert_eq!(c.get(CounterId::FaultsLost), dpus as u64);
    assert_eq!(c.get(CounterId::FaultsRecovered), 0);
    assert_eq!(r.total_instructions, 0);
    assert_eq!(r.max_cycles, 0);
}

/// A survivable plan is pure slowdown: same instructions, same or larger
/// makespan, never degraded.
#[test]
fn survivable_plans_only_add_time() {
    let mut rng = SplitMix64::new(0x5AFE_5AFE);
    let dpus = 32;
    let sets: Vec<Vec<TaskletTrace>> = (0..dpus).map(|_| random_traces(&mut rng)).collect();
    let clean = replay(dpus, None, &sets);
    let plan = FaultPlan::uniform(0xFEED_F00D, 0.25);
    let faulty = replay(dpus, Some(plan), &sets);
    assert!(!faulty.degraded, "redistribution makes loss survivable");
    assert_eq!(faulty.total_instructions, clean.total_instructions);
    assert_eq!(faulty.instr_mix, clean.instr_mix);
    assert!(faulty.max_cycles >= clean.max_cycles);
    assert!(
        faulty.breakdown.counters.get(CounterId::SlotFault) > 0,
        "the sweep should have hit at least one detailed DPU",
    );
}

/// Transfer timeouts: the counted transfer helpers retransmit with backoff
/// under the plan, keep the ledger balanced, never get faster, and stay
/// deterministic call-for-call.
#[test]
fn transfer_timeouts_retry_with_backoff_and_balance_the_ledger() {
    let plan = FaultPlan {
        timeout_rate: 0.5,
        ..FaultPlan::uniform(0x7175_E007, 0.0)
    };
    let cfg = PimConfig { num_dpus: 64, faults: Some(plan), ..Default::default() };
    let clean_sys = PimSystem::new(PimConfig { num_dpus: 64, ..Default::default() }).unwrap();
    let sys = PimSystem::new(cfg).unwrap();
    let payloads = vec![4096u64; 64];
    let mut counters = CounterSet::new();
    let mut slower = 0u32;
    for i in 0..32u64 {
        let clean = clean_sys.scatter_time(&payloads);
        let t = sys.scatter_time_counted(&payloads, &mut counters);
        assert!(t >= clean, "iteration {i}: a timeout can only slow a batch down");
        if t > clean {
            slower += 1;
        }
        let _ = sys.broadcast_time_counted(1 << 16, 64, &mut counters);
        let _ = sys.gather_time_counted(&payloads, &mut counters);
    }
    assert!(slower > 4 && slower < 28, "timeout rate 0.5 should fire sometimes: {slower}");
    assert!(counters.get(CounterId::FaultTimeouts) > 0);
    assert_eq!(
        counters.get(CounterId::FaultsInjected),
        counters.get(CounterId::FaultTimeouts),
        "each timeout is one injected fault here",
    );
    assert_eq!(counters.get(CounterId::FaultsDetected), counters.get(CounterId::FaultsInjected));
    assert_eq!(counters.get(CounterId::FaultsRecovered), counters.get(CounterId::FaultsDetected));
    assert_eq!(counters.get(CounterId::FaultsLost), 0);
    assert!(counters.get(CounterId::FaultRetries) >= counters.get(CounterId::FaultTimeouts));
    // Deterministic: replaying the same sequence reproduces the ledger.
    let mut again = CounterSet::new();
    for _ in 0..32u64 {
        let _ = sys.scatter_time_counted(&payloads, &mut again);
        let _ = sys.broadcast_time_counted(1 << 16, 64, &mut again);
        let _ = sys.gather_time_counted(&payloads, &mut again);
    }
    assert_eq!(again, counters, "transfer fault draws must be replayable");
}

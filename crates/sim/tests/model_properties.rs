//! Property-based tests for the transfer, host, and energy models.

use alpha_pim_sim::report::PhaseBreakdown;
use alpha_pim_sim::transfer::{broadcast, effective_bandwidth, gather, inter_dpu_exchange, scatter};
use alpha_pim_sim::{host, EnergyModel, HostConfig, InterDpuConfig, TransferConfig};
use proptest::prelude::*;

fn cfg() -> TransferConfig {
    TransferConfig::default()
}

proptest! {
    #[test]
    fn broadcast_is_monotone_in_bytes_and_dpus(
        bytes in 1u64..1 << 24,
        dpus in 1u32..4096,
    ) {
        let c = cfg();
        prop_assert!(broadcast(&c, bytes + 1024, dpus) >= broadcast(&c, bytes, dpus));
        prop_assert!(broadcast(&c, bytes, dpus + 64) >= broadcast(&c, bytes, dpus));
        prop_assert!(broadcast(&c, bytes, dpus) > 0.0);
    }

    #[test]
    fn scatter_is_bounded_by_padded_broadcast(
        payloads in proptest::collection::vec(1u64..1 << 16, 1..256),
    ) {
        let c = cfg();
        let max = *payloads.iter().max().unwrap();
        let s = scatter(&c, &payloads);
        // Padding means scattering equals broadcasting max bytes per DPU.
        let b = broadcast(&c, max, payloads.len() as u32);
        prop_assert!((s - b).abs() < 1e-12, "scatter {s} vs padded broadcast {b}");
        prop_assert!((gather(&c, &payloads) - s).abs() < 1e-15);
    }

    #[test]
    fn effective_bandwidth_is_monotone_and_capped(d1 in 1u32..8192, d2 in 1u32..8192) {
        let c = cfg();
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        prop_assert!(effective_bandwidth(&c, lo) <= effective_bandwidth(&c, hi));
        prop_assert!(effective_bandwidth(&c, hi) <= c.peak_bandwidth);
    }

    #[test]
    fn inter_dpu_exchange_beats_host_round_trip_for_segments(
        seg_bytes in 1024u64..1 << 20,
        dpus in 64u32..4096,
    ) {
        let mut c = cfg();
        c.inter_dpu = Some(InterDpuConfig::default());
        let per_dpu = vec![seg_bytes / dpus as u64 + 1; dpus as usize];
        let direct = inter_dpu_exchange(&c, &per_dpu).unwrap();
        // Host round trip: gather + scatter of the same segments.
        let host_trip = gather(&c, &per_dpu) + scatter(&c, &per_dpu);
        prop_assert!(direct < host_trip, "direct {direct} vs host {host_trip}");
    }

    #[test]
    fn merge_time_scales_with_work(elems in 1u64..1 << 22, fan_in in 1u32..64) {
        let h = HostConfig::default();
        let t = host::merge_time(&h, elems, fan_in, 4);
        prop_assert!(t > 0.0);
        prop_assert!(host::merge_time(&h, elems, fan_in + 1, 4) >= t);
        prop_assert!(host::merge_time(&h, elems * 2, fan_in, 4) >= t);
    }

    #[test]
    fn energy_is_additive_over_phases(
        load in 0.0f64..1.0,
        kernel in 0.0f64..1.0,
        retrieve in 0.0f64..1.0,
        merge in 0.0f64..1.0,
        dpus in 1u32..4096,
    ) {
        let m = EnergyModel::default();
        let all = PhaseBreakdown { load, kernel, retrieve, merge };
        let only_kernel = PhaseBreakdown { load: 0.0, kernel, retrieve: 0.0, merge: 0.0 };
        let rest = PhaseBreakdown { load, kernel: 0.0, retrieve, merge };
        let sum = m.upmem_energy(&only_kernel, dpus) + m.upmem_energy(&rest, dpus);
        prop_assert!((m.upmem_energy(&all, dpus) - sum).abs() < 1e-9);
        prop_assert!(m.upmem_kernel_energy(kernel, dpus) <= m.upmem_energy(&all, dpus) + 1e-12);
    }
}

#[test]
fn no_interconnect_means_no_exchange() {
    assert!(inter_dpu_exchange(&cfg(), &[1024; 8]).is_none());
}

//! Property-style tests for the transfer, host, and energy models.
//!
//! Each property runs over ≥64 seeded pseudo-random cases from the in-tree
//! [`SplitMix64`] generator, so the case set is frozen and needs no external
//! test framework.

use alpha_pim_sim::report::PhaseBreakdown;
use alpha_pim_sim::transfer::{broadcast, effective_bandwidth, gather, inter_dpu_exchange, scatter};
use alpha_pim_sim::{host, EnergyModel, HostConfig, InterDpuConfig, TransferConfig};
use alpha_pim_sparse::gen::rng::SplitMix64;

const CASES: u64 = 96;

fn cfg() -> TransferConfig {
    TransferConfig::default()
}

#[test]
fn broadcast_is_monotone_in_bytes_and_dpus() {
    let mut rng = SplitMix64::new(0xB201);
    for _ in 0..CASES {
        let bytes = 1 + rng.u64_below((1 << 24) - 1);
        let dpus = 1 + rng.u32_below(4095);
        let c = cfg();
        assert!(broadcast(&c, bytes + 1024, dpus) >= broadcast(&c, bytes, dpus));
        assert!(broadcast(&c, bytes, dpus + 64) >= broadcast(&c, bytes, dpus));
        assert!(broadcast(&c, bytes, dpus) > 0.0);
    }
}

#[test]
fn scatter_is_bounded_by_padded_broadcast() {
    let mut rng = SplitMix64::new(0x5C02);
    for _ in 0..CASES {
        let len = 1 + rng.usize_below(255);
        let payloads: Vec<u64> = (0..len).map(|_| 1 + rng.u64_below((1 << 16) - 1)).collect();
        let c = cfg();
        let max = *payloads.iter().max().unwrap();
        let s = scatter(&c, &payloads);
        // Padding means scattering equals broadcasting max bytes per DPU.
        let b = broadcast(&c, max, payloads.len() as u32);
        assert!((s - b).abs() < 1e-12, "scatter {s} vs padded broadcast {b}");
        assert!((gather(&c, &payloads) - s).abs() < 1e-15);
    }
}

#[test]
fn effective_bandwidth_is_monotone_and_capped() {
    let mut rng = SplitMix64::new(0xEB03);
    for _ in 0..CASES {
        let d1 = 1 + rng.u32_below(8191);
        let d2 = 1 + rng.u32_below(8191);
        let c = cfg();
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        assert!(effective_bandwidth(&c, lo) <= effective_bandwidth(&c, hi));
        assert!(effective_bandwidth(&c, hi) <= c.peak_bandwidth);
    }
}

#[test]
fn inter_dpu_exchange_beats_host_round_trip_for_segments() {
    let mut rng = SplitMix64::new(0x1D04);
    for _ in 0..CASES {
        let seg_bytes = 1024 + rng.u64_below((1 << 20) - 1024);
        let dpus = 64 + rng.u32_below(4096 - 64);
        let mut c = cfg();
        c.inter_dpu = Some(InterDpuConfig::default());
        let per_dpu = vec![seg_bytes / dpus as u64 + 1; dpus as usize];
        let direct = inter_dpu_exchange(&c, &per_dpu).unwrap();
        // Host round trip: gather + scatter of the same segments.
        let host_trip = gather(&c, &per_dpu) + scatter(&c, &per_dpu);
        assert!(direct < host_trip, "direct {direct} vs host {host_trip}");
    }
}

#[test]
fn merge_time_scales_with_work() {
    let mut rng = SplitMix64::new(0x3E05);
    for _ in 0..CASES {
        let elems = 1 + rng.u64_below((1 << 22) - 1);
        let fan_in = 1 + rng.u32_below(63);
        let h = HostConfig::default();
        let t = host::merge_time(&h, elems, fan_in, 4);
        assert!(t > 0.0);
        assert!(host::merge_time(&h, elems, fan_in + 1, 4) >= t);
        assert!(host::merge_time(&h, elems * 2, fan_in, 4) >= t);
    }
}

#[test]
fn energy_is_additive_over_phases() {
    let mut rng = SplitMix64::new(0xE906);
    for _ in 0..CASES {
        let load = rng.f64();
        let kernel = rng.f64();
        let retrieve = rng.f64();
        let merge = rng.f64();
        let dpus = 1 + rng.u32_below(4095);
        let m = EnergyModel::default();
        let all = PhaseBreakdown { load, kernel, retrieve, merge };
        let only_kernel = PhaseBreakdown { load: 0.0, kernel, retrieve: 0.0, merge: 0.0 };
        let rest = PhaseBreakdown { load, kernel: 0.0, retrieve, merge };
        let sum = m.upmem_energy(&only_kernel, dpus) + m.upmem_energy(&rest, dpus);
        assert!((m.upmem_energy(&all, dpus) - sum).abs() < 1e-9);
        assert!(m.upmem_kernel_energy(kernel, dpus) <= m.upmem_energy(&all, dpus) + 1e-12);
    }
}

#[test]
fn no_interconnect_means_no_exchange() {
    assert!(inter_dpu_exchange(&cfg(), &[1024; 8]).is_none());
}

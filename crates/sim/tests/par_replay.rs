//! Integration tests for the host-side parallel replay pool: reuse across
//! many calls, panic propagation, and the bit-identical-report guarantee.

use alpha_pim_sim::instr::InstrClass;
use alpha_pim_sim::par::{par_map_indexed, set_sim_threads};
use alpha_pim_sim::trace::TaskletTrace;
use alpha_pim_sim::{KernelReport, PimConfig, PimSystem, SimFidelity};
use alpha_pim_sparse::gen::rng::SplitMix64;

/// Deterministic pseudo-random trace batches for `dpus` DPUs, skewed so
/// per-DPU replay cost varies (the pool must load-balance it).
fn trace_sets(dpus: u32, seed: u64) -> Vec<Vec<TaskletTrace>> {
    let mut rng = SplitMix64::new(seed);
    (0..dpus)
        .map(|_| {
            let tasklets = 1 + rng.usize_below(12);
            (0..tasklets)
                .map(|_| {
                    let mut t = TaskletTrace::new();
                    for _ in 0..rng.usize_below(8) {
                        match rng.u32_below(3) {
                            0 => t.compute(InstrClass::Arith, 1 + rng.u32_below(200)),
                            1 => t.compute(InstrClass::LoadStore, 1 + rng.u32_below(60)),
                            _ => t.dma(8 * (1 + rng.u32_below(250))),
                        }
                    }
                    t
                })
                .collect()
        })
        .collect()
}

fn replay(dpus: u32, sets: &[Vec<TaskletTrace>]) -> KernelReport {
    let sys = PimSystem::new(PimConfig {
        num_dpus: dpus,
        fidelity: SimFidelity::Sampled(16),
        ..Default::default()
    })
    .expect("valid config");
    let mut acc = sys.accumulator();
    acc.add_batch(0, sets);
    acc.finish()
}

/// The pool is spawned per call, so back-to-back calls (as the iterative
/// apps issue) must all work and preserve input order every time.
#[test]
fn pool_survives_repeated_use() {
    let items: Vec<u64> = (0..4096).collect();
    for round in 0..50u64 {
        let out = par_map_indexed(&items, |_, &x| x * 2 + round);
        assert_eq!(out.len(), items.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2 + round);
        }
    }
}

/// A panicking worker must re-raise on the caller, and the pool must remain
/// usable afterwards.
#[test]
fn worker_panics_propagate_to_caller() {
    // Force real worker threads so the join-then-resume path is exercised
    // even on single-core machines. (Every test here is correct at any
    // thread count, so the global override cannot break concurrent tests.)
    set_sim_threads(4);
    let items: Vec<u32> = (0..512).collect();
    let result = std::panic::catch_unwind(|| {
        par_map_indexed(&items, |_, &x| {
            assert!(x != 300, "injected failure");
            x
        })
    });
    let payload = result.expect_err("panic must propagate");
    let text = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(text.contains("injected failure"), "unexpected payload: {text}");
    // The next call starts a fresh scope and must be unaffected.
    let ok = par_map_indexed(&items, |_, &x| x + 1);
    assert_eq!(ok[511], 512);
}

/// The headline determinism guarantee: a `KernelReport` produced with the
/// parallel batch API is bit-identical at every thread count, including the
/// floating-point fields that would differ under any reduction reordering.
#[test]
fn report_is_bit_identical_across_thread_counts() {
    let dpus = 256;
    let sets = trace_sets(dpus, 0xBEEF);
    set_sim_threads(1);
    let sequential = replay(dpus, &sets);
    for threads in [2, 3, 8, 16] {
        set_sim_threads(threads);
        let parallel = replay(dpus, &sets);
        assert_eq!(sequential, parallel, "report diverged at {threads} threads");
        assert_eq!(
            sequential.seconds.to_bits(),
            parallel.seconds.to_bits(),
            "seconds not bit-identical at {threads} threads"
        );
    }
    set_sim_threads(1);
}
